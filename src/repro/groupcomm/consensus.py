"""Chandra–Toueg consensus with an unreliable failure detector.

Section 2.1 of the paper explains why distributed systems go to this
trouble: in the asynchronous model crash detection is unreliable, yet
non-blocking replication needs the replicas to agree.  The rotating-
coordinator algorithm of Chandra and Toueg solves consensus with a
majority of correct processes and an eventually-strong failure detector —
exactly the machinery hidden inside the ABCAST and VSCAST primitives the
paper builds on.

Algorithm sketch (per instance, per round ``r`` with coordinator
``group[r mod n]``):

1. every process sends its current *estimate* (with the round that last
   adopted it) to the coordinator;
2. the coordinator gathers a majority of estimates, picks the one with the
   highest adoption round, and proposes it to all;
3. each process either *acks* the proposal (adopting it) or, upon
   suspecting the coordinator, *nacks* and moves to the next round;
4. a coordinator that gathers a majority of acks reliably broadcasts the
   decision; the broadcast's agreement property makes the decision final
   everywhere.

Safety holds regardless of failure-detector behaviour; liveness needs the
detector to eventually stop suspecting some correct process.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ProcessInterrupted
from ..failures import FailureDetector
from ..net import Node
from ..sim import Future, TraceLog
from .channels import ReliableTransport
from .rbcast import ReliableBroadcast

__all__ = ["Consensus"]

ESTIMATE = "ct.estimate"
PROPOSE = "ct.propose"
REPLY = "ct.reply"
DECIDE_CHANNEL = "ct.decide"


class _Instance:
    """Book-keeping for one consensus instance at one process."""

    def __init__(self) -> None:
        self.round = 0
        self.estimate: Any = None
        self.estimate_ts = -1
        self.proposed = False
        self.decided = False
        self.decision: Any = None
        # round -> accumulated protocol state
        self.estimates: Dict[int, List[Tuple[int, str, Any]]] = {}
        self.proposals: Dict[int, Any] = {}
        self.replies: Dict[int, List[bool]] = {}
        # waiters, keyed by round
        self.estimate_waiters: Dict[int, Future] = {}
        self.proposal_waiters: Dict[int, Future] = {}
        self.reply_waiters: Dict[int, Future] = {}
        self.decided_future: Optional[Future] = None


class Consensus:
    """Per-node multi-instance Chandra–Toueg consensus endpoint.

    Parameters
    ----------
    node, transport, group:
        Hosting node, its reliable transport, and the static member list.
    detector:
        The node's failure detector (provides coordinator suspicion).
    on_decide:
        Upcall ``on_decide(instance, value)``, invoked exactly once per
        instance at every member that delivers the decision.
    """

    def __init__(
        self,
        node: Node,
        transport: ReliableTransport,
        group: List[str],
        detector: FailureDetector,
        on_decide: Callable[[Any, Any], None],
        trace: Optional[TraceLog] = None,
        channel_prefix: str = "ct",
    ) -> None:
        self.node = node
        self.transport = transport
        self.group = list(group)
        self.detector = detector
        self.on_decide = on_decide
        self.trace = trace
        self._instances: Dict[Any, _Instance] = {}
        p = channel_prefix
        self._types = {
            "estimate": f"{p}.estimate",
            "propose": f"{p}.propose",
            "reply": f"{p}.reply",
        }
        transport.on(self._types["estimate"], self._on_estimate)
        transport.on(self._types["propose"], self._on_propose)
        transport.on(self._types["reply"], self._on_reply)
        self._decider = ReliableBroadcast(
            node, transport, group, self._on_decide_msg, channel=f"{p}.decide"
        )

    @property
    def majority(self) -> int:
        return len(self.group) // 2 + 1

    # -- public API --------------------------------------------------------

    def propose(self, instance: Any, value: Any) -> Future:
        """Propose ``value`` for ``instance``; returns a decision future.

        Proposing twice for the same instance is a no-op (the first value
        stands); the same decision future is returned.
        """
        state = self._state(instance)
        if state.decided_future is None:
            state.decided_future = self.node.sim.future(label=f"decide:{instance}")
        if state.proposed:
            return state.decided_future
        state.proposed = True
        state.estimate = value
        state.estimate_ts = 0
        if not state.decided:
            self.node.spawn(self._run(instance, state), name=f"{self.node.name}-ct-{instance}")
        return state.decided_future

    def decision_of(self, instance: Any) -> Optional[Any]:
        """The decided value, or None if this instance is still open."""
        state = self._instances.get(instance)
        if state is None or not state.decided:
            return None
        return state.decision

    # -- the round loop -------------------------------------------------------

    def _run(self, instance: Any, state: _Instance):
        sim = self.node.sim
        try:
            while not state.decided:
                r = state.round
                coordinator = self.group[r % len(self.group)]
                self.transport.send(
                    coordinator,
                    self._types["estimate"],
                    instance=instance,
                    round=r,
                    ts=state.estimate_ts,
                    value=state.estimate,
                )
                if coordinator == self.node.name:
                    outcome = yield self._race(state, self._await_estimates(state, r))
                    if outcome is _DECIDED:
                        break
                    proposal = self._choose_estimate(instance, outcome)
                    for member in self.group:
                        self.transport.send(
                            member,
                            self._types["propose"],
                            instance=instance,
                            round=r,
                            value=proposal,
                        )
                # Phase 3: adopt the proposal or give up on the coordinator.
                waited = yield self._race(
                    state,
                    sim.any_of(
                        [self._await_proposal(state, r), self._suspicion(coordinator)],
                        label=f"phase3:{instance}:{r}",
                    ),
                )
                if waited is _DECIDED:
                    break
                index, _value = waited
                if index == 0:
                    state.estimate = state.proposals[r]
                    state.estimate_ts = r
                    ack = True
                else:
                    ack = False
                self.transport.send(
                    coordinator,
                    self._types["reply"],
                    instance=instance,
                    round=r,
                    ack=ack,
                )
                if coordinator == self.node.name:
                    outcome = yield self._race(state, self._await_replies(state, r))
                    if outcome is _DECIDED:
                        break
                    if all(outcome):
                        self._decider.broadcast(
                            "decide", instance=instance, value=state.estimate
                        )
                state.round = r + 1
        except ProcessInterrupted:
            return  # node crashed; instance dies with it

    def _choose_estimate(self, instance: Any, estimates: List[Tuple[int, str, Any]]) -> Any:
        """Pick the estimate adopted most recently; break ties by name.

        Overridden by :class:`~repro.groupcomm.deferred.DeferredConsensus`
        to compute the initial value lazily at the coordinator.
        """
        best_ts, _src, value = max(estimates, key=lambda e: (e[0], e[1]))
        del best_ts
        return value

    # -- waiters --------------------------------------------------------------

    def _race(self, state: _Instance, future: Future) -> Future:
        """Race a protocol future against this instance's decision."""
        sim = self.node.sim
        combined = sim.future(label="race")
        def on_either(index_value):
            index, value = index_value
            combined.try_set_result(_DECIDED if index == 1 else value)
        inner = sim.any_of([future, state.decided_future])
        inner.add_callback(lambda f: on_either(f.result))
        return combined

    def _await_estimates(self, state: _Instance, r: int) -> Future:
        future = self.node.sim.future(label=f"estimates:{r}")
        have = state.estimates.get(r, [])
        if len(have) >= self.majority:
            future.set_result(list(have))
        else:
            state.estimate_waiters[r] = future
        return future

    def _await_proposal(self, state: _Instance, r: int) -> Future:
        future = self.node.sim.future(label=f"proposal:{r}")
        if r in state.proposals:
            future.set_result(state.proposals[r])
        else:
            state.proposal_waiters[r] = future
        return future

    def _await_replies(self, state: _Instance, r: int) -> Future:
        future = self.node.sim.future(label=f"replies:{r}")
        have = state.replies.get(r, [])
        if len(have) >= self.majority:
            future.set_result(list(have))
        else:
            state.reply_waiters[r] = future
        return future

    # -- message handlers ---------------------------------------------------------

    def _state(self, instance: Any) -> _Instance:
        state = self._instances.get(instance)
        if state is None:
            state = _Instance()
            self._instances[instance] = state
        if state.decided_future is None:
            state.decided_future = self.node.sim.future(label=f"decide:{instance}")
        return state

    def _on_estimate(self, src: str, payload: dict) -> None:
        state = self._state(payload["instance"])
        r = payload["round"]
        bucket = state.estimates.setdefault(r, [])
        bucket.append((payload["ts"], src, payload["value"]))
        waiter = state.estimate_waiters.get(r)
        if waiter is not None and len(bucket) >= self.majority and not waiter.done:
            del state.estimate_waiters[r]
            waiter.set_result(list(bucket))

    def _on_propose(self, src: str, payload: dict) -> None:
        state = self._state(payload["instance"])
        r = payload["round"]
        state.proposals[r] = payload["value"]
        waiter = state.proposal_waiters.pop(r, None)
        if waiter is not None and not waiter.done:
            waiter.set_result(payload["value"])

    def _on_reply(self, src: str, payload: dict) -> None:
        state = self._state(payload["instance"])
        r = payload["round"]
        bucket = state.replies.setdefault(r, [])
        bucket.append(payload["ack"])
        waiter = state.reply_waiters.get(r)
        if waiter is not None and len(bucket) >= self.majority and not waiter.done:
            del state.reply_waiters[r]
            waiter.set_result(list(bucket))

    def _on_decide_msg(self, origin: str, mtype: str, body: dict) -> None:
        state = self._state(body["instance"])
        if state.decided:
            return
        state.decided = True
        state.decision = body["value"]
        if self.trace is not None:
            self.trace.record(
                "consensus", self.node.name,
                instance=body["instance"], value=repr(body["value"]), round=state.round,
            )
        if not state.decided_future.done:
            state.decided_future.set_result(body["value"])
        self.on_decide(body["instance"], body["value"])

    def _suspicion(self, peer: str) -> Future:
        """Future resolving when the failure detector suspects ``peer``."""
        future = self.node.sim.future(label=f"suspect:{peer}")
        if self.detector.is_suspected(peer):
            future.set_result(peer)
            return future
        def listener(name: str) -> None:
            if name == peer:
                future.try_set_result(peer)
        self.detector.on_suspect(listener)
        return future


class _DecidedSentinel:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DECIDED>"


_DECIDED = _DecidedSentinel()
