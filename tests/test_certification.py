"""Tests for the certification test (optimistic replication)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Certifier, DataStore, UpdateRecord


def wset(*pairs):
    return [UpdateRecord(item, value, 0) for item, value in pairs]


class TestReadCertification:
    def test_fresh_readset_commits(self):
        store = DataStore()
        store.write("x", 1)  # version 1
        certifier = Certifier(store)
        outcome = certifier.certify({"x": 1}, wset(("x", 2)))
        assert outcome.committed
        assert store.read("x") == 2

    def test_stale_readset_aborts(self):
        store = DataStore()
        store.write("x", 1)
        certifier = Certifier(store)
        assert certifier.certify({"x": 1}, wset(("x", "a")))
        # second transaction read x at version 1, but it is now 2
        outcome = certifier.certify({"x": 1}, wset(("x", "b")))
        assert not outcome.committed
        assert outcome.conflicts == ["x"]
        assert store.read("x") == "a", "losing writeset must not be applied"

    def test_blind_write_always_commits_in_read_mode(self):
        store = DataStore()
        certifier = Certifier(store)
        for i in range(5):
            assert certifier.certify({}, wset(("x", i)))
        assert store.read("x") == 4

    def test_disjoint_items_do_not_conflict(self):
        store = DataStore()
        store.write("x", 0)
        store.write("y", 0)
        certifier = Certifier(store)
        assert certifier.certify({"x": 1}, wset(("x", 1)))
        assert certifier.certify({"y": 1}, wset(("y", 1)))

    def test_versions_converge_across_sites_in_same_order(self):
        stream = [
            ({"x": 0}, wset(("x", "a"))),
            ({"x": 1}, wset(("x", "b"))),
            ({"x": 1}, wset(("x", "c"))),   # stale -> abort at both
            ({}, wset(("y", 1))),
        ]
        site1, site2 = DataStore("s1"), DataStore("s2")
        cert1, cert2 = Certifier(site1), Certifier(site2)
        outcomes1 = [bool(cert1.certify(rs, ws)) for rs, ws in stream]
        outcomes2 = [bool(cert2.certify(rs, ws)) for rs, ws in stream]
        assert outcomes1 == outcomes2 == [True, True, False, True]
        assert site1.digest() == site2.digest()

    def test_abort_rate(self):
        store = DataStore()
        certifier = Certifier(store)
        certifier.certify({}, wset(("x", 1)))
        certifier.certify({"x": 0}, wset(("x", 2)))  # stale
        assert certifier.abort_rate == 0.5


class TestWriteCertification:
    def test_first_committer_wins(self):
        store = DataStore()
        certifier = Certifier(store, mode="write")
        # both writers based their write on version 0 of x
        assert certifier.certify({}, wset(("x", "first")), base_versions={"x": 0})
        outcome = certifier.certify({}, wset(("x", "second")), base_versions={"x": 0})
        assert not outcome.committed
        assert store.read("x") == "first"

    def test_sequential_writes_pass(self):
        store = DataStore()
        certifier = Certifier(store, mode="write")
        assert certifier.certify({}, wset(("x", 1)), base_versions={"x": 0})
        assert certifier.certify({}, wset(("x", 2)), base_versions={"x": 1})

    def test_read_only_conflicts_ignored_in_write_mode(self):
        store = DataStore()
        store.write("x", 0)
        certifier = Certifier(store, mode="write")
        assert certifier.certify({}, wset(("x", 1)), base_versions={"x": 1})
        # stale READ, but write mode does not care
        assert certifier.certify({"x": 1}, wset(("y", 1)), base_versions={"y": 0})

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Certifier(DataStore(), mode="pessimistic")


class TestDeterminismProperty:
    @given(
        st.lists(
            st.tuples(
                st.dictionaries(st.sampled_from("xy"), st.integers(0, 3), max_size=2),
                st.sampled_from("xy"),
                st.integers(),
            ),
            max_size=15,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_same_stream_same_outcomes_and_state(self, stream):
        """Certification is a deterministic function of the input order."""
        sites = [DataStore(f"s{i}") for i in range(3)]
        certifiers = [Certifier(site) for site in sites]
        all_outcomes = []
        for certifier in certifiers:
            outcomes = [
                bool(certifier.certify(rs, wset((item, value))))
                for rs, item, value in stream
            ]
            all_outcomes.append(outcomes)
        assert all_outcomes[0] == all_outcomes[1] == all_outcomes[2]
        assert sites[0].digest() == sites[1].digest() == sites[2].digest()
