"""Dynamic twin of the static determinism rules (repro.lint D1xx).

Runs the same seeded workload twice through every registered technique
and asserts the two executions are observably identical: same trace (the
source of every regenerated figure), same final stores, same client
results.  Any nondeterminism the linter's static rules cannot see —
unordered container state, leaked object identity, global RNG reached
through a helper — shows up here as a diff.
"""

import pytest

from repro import REGISTRY
from repro.workload import WorkloadSpec, run_workload


def _run(technique: str, seed: int):
    spec = WorkloadSpec(items=6, read_fraction=0.3, ops_per_transaction=2)
    system, driver, summary = run_workload(
        technique,
        spec=spec,
        replicas=3,
        clients=2,
        requests_per_client=3,
        seed=seed,
        think_time=5.0,
        settle=300.0,
        config={"abcast": "sequencer"},
    )
    trace = [
        (
            event.time,
            event.category,
            event.source,
            tuple(sorted((key, repr(value)) for key, value in event.data.items())),
        )
        for event in system.trace
    ]
    stores = {
        name: system.store_of(name).digest() for name in system.live_replicas()
    }
    results = [
        (r.request_id, r.committed, repr(r.values), r.server)
        for r in driver.results
    ]
    return trace, stores, results, (summary.requests, summary.committed,
                                    summary.aborted)


@pytest.mark.parametrize("technique", sorted(REGISTRY))
def test_same_seed_same_execution(technique):
    first = _run(technique, seed=1301)
    second = _run(technique, seed=1301)
    for label, a, b in zip(("trace", "stores", "results", "summary"),
                           first, second):
        assert a == b, f"{technique}: {label} diverged between identical seeds"


def test_different_seeds_actually_differ():
    """Guard against the comparison being vacuous (e.g. empty traces).

    With the default constant-latency network the *trace* of a failure-free
    run can be timing-identical across seeds, but the seeded workload mix
    must still show up in the stores and client results.
    """
    base = _run("active", seed=1301)
    other = _run("active", seed=1302)
    assert base != other
    assert len(base[0]) > 50
