"""Tests for Chandra-Toueg consensus and the deferred-value variant."""

from helpers import GroupHarness

from repro.groupcomm import Consensus, DeferredConsensus


def attach(h, cls=Consensus):
    decisions = {name: {} for name in h.names}
    endpoints = {}
    for name in h.names:
        def on_decide(instance, value, n=name):
            decisions[n][instance] = value
        endpoints[name] = cls(
            h.nodes[name], h.transports[name], h.names, h.detectors[name], on_decide
        )
    return endpoints, decisions


class TestConsensusBasics:
    def test_agreement_and_validity(self):
        h = GroupHarness(3)
        cons, decisions = attach(h)
        for i, name in enumerate(h.names):
            cons[name].propose("inst", f"value-{i}")
        h.run(until=500)
        decided = {decisions[name].get("inst") for name in h.names}
        assert len(decided) == 1, f"disagreement: {decided}"
        value = decided.pop()
        assert value in {"value-0", "value-1", "value-2"}

    def test_decision_future_resolves(self):
        h = GroupHarness(3)
        cons, _ = attach(h)
        futures = [cons[name].propose("i", name) for name in h.names]
        h.run(until=500)
        results = {f.result for f in futures}
        assert len(results) == 1

    def test_single_proposer_value_wins(self):
        # Validity: the decided value was proposed by someone; with one
        # distinct value in play it must be that value.
        h = GroupHarness(5)
        cons, decisions = attach(h)
        for name in h.names:
            cons[name].propose(0, "only")
        h.run(until=500)
        assert all(decisions[name][0] == "only" for name in h.names)

    def test_multiple_instances_independent(self):
        h = GroupHarness(3)
        cons, decisions = attach(h)
        for inst in range(4):
            for i, name in enumerate(h.names):
                cons[name].propose(inst, (inst, i))
        h.run(until=2000)
        for inst in range(4):
            decided = {decisions[name][inst] for name in h.names}
            assert len(decided) == 1
            assert decided.pop()[0] == inst

    def test_propose_twice_keeps_first(self):
        h = GroupHarness(3)
        cons, decisions = attach(h)
        cons["n0"].propose("x", "first")
        cons["n0"].propose("x", "second")
        for name in h.names[1:]:
            cons[name].propose("x", "first")
        h.run(until=500)
        assert all(decisions[name]["x"] == "first" for name in h.names)

    def test_decision_of_accessor(self):
        h = GroupHarness(3)
        cons, _ = attach(h)
        assert cons["n0"].decision_of("i") is None
        for name in h.names:
            cons[name].propose("i", 42)
        h.run(until=500)
        assert cons["n0"].decision_of("i") == 42


class TestConsensusUnderFailures:
    def test_decides_despite_coordinator_crash(self):
        # Round-0 coordinator is n0 (group order); crash it immediately.
        h = GroupHarness(5, fd_interval=2.0, fd_timeout=6.0)
        cons, decisions = attach(h)
        for name in h.names:
            cons[name].propose("i", name)
        h.sim.schedule(0.5, h.nodes["n0"].crash)
        h.run(until=3000)
        survivors = [n for n in h.names if n != "n0"]
        decided = {decisions[name].get("i") for name in survivors}
        assert len(decided) == 1 and None not in decided

    def test_decides_with_minority_crashes(self):
        h = GroupHarness(5, fd_interval=2.0, fd_timeout=6.0)
        cons, decisions = attach(h)
        for name in h.names:
            cons[name].propose("i", name)
        h.sim.schedule(0.5, h.nodes["n0"].crash)
        h.sim.schedule(1.5, h.nodes["n1"].crash)
        h.run(until=5000)
        survivors = h.names[2:]
        decided = {decisions[name].get("i") for name in survivors}
        assert len(decided) == 1 and None not in decided

    def test_safe_under_aggressive_wrong_suspicions(self):
        # Tiny FD timeout with jittery latency: live coordinators get
        # suspected, extra rounds run, but agreement must never break.
        for seed in range(5):
            h = GroupHarness(3, seed=seed, jitter=True, fd_interval=1.0, fd_timeout=1.2)
            cons, decisions = attach(h)
            for name in h.names:
                cons[name].propose("i", name)
            h.run(until=4000)
            decided = {decisions[name].get("i") for name in h.names}
            decided.discard(None)
            assert len(decided) <= 1, f"seed {seed}: disagreement {decided}"
            assert decided, f"seed {seed}: nothing decided"

    def test_late_proposer_still_learns_decision(self):
        h = GroupHarness(3)
        cons, decisions = attach(h)
        cons["n0"].propose("i", "early")
        cons["n1"].propose("i", "early")
        h.run(until=300)
        # n2 never proposed but must have learned via the decide broadcast.
        assert decisions["n2"].get("i") == "early"


class TestDeferredConsensus:
    def test_only_coordinator_computes_in_failure_free_run(self):
        h = GroupHarness(3)
        cons, decisions = attach(h, cls=DeferredConsensus)
        computed = []
        for name in h.names:
            cons[name].propose_deferred(
                "i", lambda n=name: (computed.append(n), f"update-by-{n}")[1]
            )
        h.run(until=500)
        decided = {decisions[name]["i"] for name in h.names}
        assert len(decided) == 1
        assert computed == ["n0"], f"only round-0 coordinator should execute: {computed}"
        assert decided.pop() == "update-by-n0"

    def test_next_coordinator_computes_after_crash(self):
        h = GroupHarness(3, fd_interval=2.0, fd_timeout=6.0)
        cons, decisions = attach(h, cls=DeferredConsensus)
        computed = []
        for name in h.names:
            cons[name].propose_deferred(
                "i", lambda n=name: (computed.append(n), f"update-by-{n}")[1]
            )
        h.sim.schedule(0.2, h.nodes["n0"].crash)
        h.run(until=3000)
        survivors = ["n1", "n2"]
        decided = {decisions[name].get("i") for name in survivors}
        assert len(decided) == 1
        value = decided.pop()
        assert value is not None
        # Some later coordinator executed; possibly n0 also did before dying.
        assert any(n in computed for n in survivors)
        assert value in {f"update-by-{n}" for n in computed}
