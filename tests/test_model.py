"""Tests for the Figure 1 abstract functional model."""

import pytest

from repro import AC, END, EX, RE, SC
from repro.core.model import GENERIC_DESCRIPTOR, AbstractReplicationProtocol


class TestAbstractProtocol:
    def test_full_walk_records_all_five_phases(self):
        model = AbstractReplicationProtocol(replicas=3, seed=1)
        model.run_update("x", 1)
        assert model.contact_sequence() == [RE, SC, EX, AC, END]

    def test_generic_descriptor_matches_walk(self):
        model = AbstractReplicationProtocol(replicas=3, seed=1)
        model.run_update("x", 1)
        assert model.tracer.matches(
            GENERIC_DESCRIPTOR, "req-1", source="replica1"
        )

    def test_all_replicas_apply_the_update(self):
        model = AbstractReplicationProtocol(replicas=4, seed=2)
        model.run_update("account", 500)
        assert model.consistent()
        assert all(state["account"] == 500 for state in model.state.values())

    def test_client_observes_end_after_both_coordinations(self):
        model = AbstractReplicationProtocol(replicas=3, seed=1)
        latency = model.run_update("x", 1)
        # RE hop + SC round trip + AC round trip + END hop = 6 units at
        # constant latency 1.
        assert latency == 6.0

    def test_skipping_ac_gives_the_abcast_shape(self):
        model = AbstractReplicationProtocol(replicas=3, seed=1, skip_phases=[AC])
        model.run_update("x", 1)
        assert model.contact_sequence() == [RE, SC, EX, END]
        assert model.consistent()

    def test_skipping_sc_gives_the_primary_shape(self):
        model = AbstractReplicationProtocol(replicas=3, seed=1, skip_phases=[SC])
        model.run_update("x", 1)
        assert model.contact_sequence() == [RE, EX, AC, END]
        assert model.consistent()

    def test_skipping_phases_reduces_latency(self):
        full = AbstractReplicationProtocol(replicas=3, seed=1)
        lat_full = full.run_update("x", 1)
        merged = AbstractReplicationProtocol(replicas=3, seed=1, skip_phases=[AC])
        lat_merged = merged.run_update("x", 1)
        assert lat_merged < lat_full

    def test_non_contact_replicas_record_coordination_phases(self):
        model = AbstractReplicationProtocol(replicas=3, seed=1)
        model.run_update("x", 1)
        other = model.tracer.observed_sequence("req-1", source="replica2")
        assert other == [SC, AC]
