"""Tests for quorum-based eager update everywhere (Section 5.4.1's
"quorums are orthogonal" remark made concrete)."""

import pytest

from repro import Operation, ReplicatedSystem
from repro.analysis import counter_check
from repro.workload import WorkloadSpec, run_workload


def quorum_system(replicas=5, write_quorum=3, clients=1, seed=1, **kwargs):
    return ReplicatedSystem(
        "eager_ue_locking", replicas=replicas, clients=clients, seed=seed,
        config={"write_quorum": write_quorum, "lock_timeout": 30.0}, **kwargs,
    )


class TestQuorumConfiguration:
    def test_minority_quorum_rejected(self):
        with pytest.raises(ValueError):
            quorum_system(replicas=5, write_quorum=2)

    def test_oversized_quorum_rejected(self):
        with pytest.raises(ValueError):
            quorum_system(replicas=3, write_quorum=4)

    def test_full_quorum_allowed(self):
        quorum_system(replicas=3, write_quorum=3)


class TestQuorumWrites:
    def test_write_touches_only_quorum_sites(self):
        system = quorum_system(replicas=5, write_quorum=3)
        result = system.execute([Operation.write("x", "v")])
        assert result.committed
        holding = [n for n in system.replica_names
                   if system.store_of(n).read("x") == "v"]
        assert len(holding) == 3, holding
        # Lock traffic went to exactly the quorum.
        assert system.net.stats.by_type["ueld.lock"] == 3

    def test_quorum_read_sees_latest_write(self):
        # Write through c0 (quorum starting at r0), then read through a
        # client whose home replica was NOT in the write quorum: the read
        # quorum (R = 5-3+1 = 3) must intersect the write quorum.
        system = quorum_system(replicas=5, write_quorum=3, clients=5)
        write = system.execute([Operation.write("x", "latest")], client=0)
        assert write.committed
        read = system.execute([Operation.read("x")], client=3)  # home r3
        assert read.committed
        assert read.value == "latest", "read quorum must overlap write quorum"

    def test_version_chain_across_disjoint_looking_quorums(self):
        # Two writes from different delegates hit different (overlapping)
        # quorums; the second must build on the first's version.
        system = quorum_system(replicas=5, write_quorum=3, clients=5)
        r1 = system.execute([Operation.update("x", "add", 10)], client=0)
        r2 = system.execute([Operation.update("x", "add", 5)], client=2)
        assert r1.committed and r2.committed
        read = system.execute([Operation.read("x")], client=4)
        assert read.value == 15, "second update must see the first through the quorum"

    def test_counter_oracle_under_quorum_contention(self):
        spec = WorkloadSpec(items=3, read_fraction=0.0)
        system, driver, summary = run_workload(
            "eager_ue_locking", spec=spec, replicas=5, clients=3,
            requests_per_client=6, seed=9, retry_aborts=True, settle=400.0,
            config={"write_quorum": 3, "lock_timeout": 30.0},
        )
        committed = [r for r in driver.results if r.committed]
        # The freshest copy (any read quorum's max version) must equal the
        # committed increment total even though no single store has to.
        from repro.analysis import expected_counters
        totals = expected_counters(committed)
        for item, expected in totals.items():
            freshest = max(
                (system.store_of(n).version(item), system.store_of(n).read(item) or 0)
                for n in system.replica_names
            )
            assert freshest[1] == expected, (item, freshest, expected)

    def test_phase_structure_unchanged_by_quorum(self):
        # Section 5.4.1: quorums do not change the phase sequence.
        from repro import AC, END, EX, RE, SC
        system = quorum_system(replicas=5, write_quorum=3)
        result = system.execute([Operation.write("x", 1)])
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        assert observed == [RE, SC, EX, AC, END]

    def test_write_survives_minority_of_sites_down(self):
        system = quorum_system(replicas=5, write_quorum=3,
                               fd_interval=2.0, fd_timeout=6.0)
        system.replicas["r3"].node.crash()
        system.replicas["r4"].node.crash()
        system.sim.run(until=20.0)  # let detectors notice
        result = system.execute([Operation.update("x", "add", 1)])
        assert result.committed, "3 live sites still form a write quorum"

    def test_write_blocked_without_quorum(self):
        system = quorum_system(replicas=5, write_quorum=4,
                               fd_interval=2.0, fd_timeout=6.0,
                               client_timeout=None)
        for name in ("r2", "r3", "r4"):
            system.replicas[name].node.crash()
        system.sim.run(until=20.0)
        future = system.client(0).submit([Operation.write("x", 1)])
        result = system.sim.run_until_done(future)
        assert not result.committed
        assert "quorum" in result.reason
