"""Tests for optimistic atomic broadcast and its certification integration."""

import pytest
from helpers import GroupHarness

from repro import Operation, ReplicatedSystem
from repro.groupcomm import OptimisticAtomicBroadcast
from repro.net import UniformLatency


def attach(h, flavour="sequencer"):
    endpoints = {}
    tentative = {name: [] for name in h.names}
    final = {name: [] for name in h.names}
    for name in h.names:
        def opt(origin, mtype, body, n=name):
            tentative[n].append(body["tag"])
        def fin(origin, mtype, body, matched, n=name):
            final[n].append((body["tag"], matched))
        endpoints[name] = OptimisticAtomicBroadcast(
            h.nodes[name], h.transports[name], h.names, h.detectors[name],
            opt_deliver=opt, final_deliver=fin, flavour=flavour,
        )
    return endpoints, tentative, final


class TestOptimisticLayer:
    def test_tentative_precedes_final(self):
        h = GroupHarness(3)
        ab, tentative, final = attach(h)
        ab["n0"].abcast("op", tag="m1")
        h.run(until=200)
        for name in h.names:
            assert tentative[name] == ["m1"]
            assert final[name] == [("m1", True)]

    def test_final_order_identical_everywhere(self):
        h = GroupHarness(3, jitter=True, seed=13)
        ab, tentative, final = attach(h)
        for i in range(8):
            ab[h.names[i % 3]].abcast("op", tag=i)
        h.run(until=2000)
        orders = {name: [tag for tag, _m in final[name]] for name in h.names}
        reference = orders["n0"]
        assert len(reference) == 8
        for name in h.names:
            assert orders[name] == reference

    def test_perfect_match_rate_without_jitter(self):
        h = GroupHarness(3)
        ab, tentative, final = attach(h)
        for i in range(6):
            ab["n0"].abcast("op", tag=i)
        h.run(until=500)
        for name in h.names:
            assert ab[name].match_rate == 1.0

    def test_jitter_produces_some_mismatches_somewhere(self):
        mismatches = 0
        for seed in range(6):
            h = GroupHarness(4, jitter=True, seed=seed)
            ab, tentative, final = attach(h)
            for i in range(10):
                ab[h.names[i % 4]].abcast("op", tag=i)
            h.run(until=3000)
            mismatches += sum(ab[name].mismatches for name in h.names)
        assert mismatches > 0, "jitter should break spontaneous order sometimes"

    def test_matched_flag_consistent_with_tentative_position(self):
        h = GroupHarness(3, jitter=True, seed=3)
        ab, tentative, final = attach(h)
        for i in range(6):
            ab[h.names[i % 3]].abcast("op", tag=i)
        h.run(until=2000)
        for name in h.names:
            finals = [tag for tag, _m in final[name]]
            for position, (tag, matched) in enumerate(final[name]):
                if matched:
                    # a matched delivery had been seen tentatively by then
                    assert tag in tentative[name]

    def test_consensus_flavour_works(self):
        h = GroupHarness(3)
        ab, tentative, final = attach(h, flavour="consensus")
        ab["n1"].abcast("op", tag="x")
        h.run(until=1000)
        for name in h.names:
            assert [t for t, _m in final[name]] == ["x"]


class TestOptimisticCertification:
    def run_system(self, optimistic, processing_time=4.0, jitter=False, seed=9,
                   flavour="sequencer", client=1):
        # The submitting client's home (r1) is not the sequencer, so the
        # ordering protocol has real latency to hide the processing behind.
        system = ReplicatedSystem(
            "certification", replicas=3, clients=2, seed=seed,
            latency=UniformLatency(0.5, 2.5) if jitter else None,
            config={
                "abcast": flavour,
                "optimistic": optimistic,
                "processing_time": processing_time,
            },
        )
        results = []

        def loop():
            for i in range(8):
                results.append((yield system.client(client).submit(
                    [Operation.update(f"k{i}", "add", 1)]
                )))
                yield system.sim.timeout(25.0)

        handle = system.sim.spawn(loop())
        system.sim.run_until_done(handle)
        system.settle(300)
        return system, results

    def test_processing_time_adds_latency_classically(self):
        fast, fast_results = self.run_system(False, processing_time=0.0)
        slow, slow_results = self.run_system(False, processing_time=4.0)
        fast_mean = sum(r.latency for r in fast_results) / len(fast_results)
        slow_mean = sum(r.latency for r in slow_results) / len(slow_results)
        assert slow_mean == pytest.approx(fast_mean + 4.0)

    def test_optimism_hides_the_ordering_gap(self):
        # The hidden amount equals the latency between tentative and final
        # delivery at the delegate (2 hops via the sequencer here).
        classic, classic_results = self.run_system(False, processing_time=4.0)
        optimistic, optimistic_results = self.run_system(True, processing_time=4.0)
        classic_mean = sum(r.latency for r in classic_results) / 8
        optimistic_mean = sum(r.latency for r in optimistic_results) / 8
        assert optimistic_mean <= classic_mean - 1.5, (
            f"overhead not hidden: {optimistic_mean} vs {classic_mean}"
        )
        assert all(r.committed for r in optimistic_results)
        assert optimistic.converged()

    def test_slow_ordering_hides_processing_fully(self):
        # With consensus-based ordering the gap exceeds the processing
        # time, so the optimistic latency equals the zero-cost protocol's.
        baseline, base_results = self.run_system(
            True, processing_time=0.0, flavour="consensus")
        optimistic, opt_results = self.run_system(
            True, processing_time=3.0, flavour="consensus")
        base_mean = sum(r.latency for r in base_results) / 8
        optimistic_mean = sum(r.latency for r in opt_results) / 8
        assert optimistic_mean == pytest.approx(base_mean), (
            "processing fully hidden behind consensus ordering"
        )

    def test_optimistic_mode_preserves_correctness_under_jitter(self):
        system, results = self.run_system(True, processing_time=4.0,
                                          jitter=True, seed=21)
        assert all(r.committed for r in results)
        assert system.converged()
        counts = {
            (system.protocol_at(n).certifier.certified,
             system.protocol_at(n).certifier.rejected)
            for n in system.replica_names
        }
        assert len(counts) == 1, "sites must still agree exactly"

    def test_conflicting_transactions_still_resolved(self):
        system = ReplicatedSystem(
            "certification", replicas=3, clients=2, seed=5,
            config={"abcast": "sequencer", "optimistic": True,
                    "processing_time": 3.0},
        )
        f0 = system.client(0).submit([Operation.update("hot", "add", 1)])
        f1 = system.client(1).submit([Operation.update("hot", "add", 1)])
        r0, r1 = system.sim.run_until_done(system.sim.all_of([f0, f1]))
        system.settle(300)
        assert r0.committed != r1.committed
        assert all(system.store_of(n).read("hot") == 1
                   for n in system.live_replicas())
