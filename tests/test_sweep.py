"""Tests for the seed-sweep runner: cells, merge determinism, saturation."""

import json
import random

from repro.workload import SweepConfig
from repro.workload.sweep import (
    merge_rows,
    render_saturation,
    run_cell,
    run_sweep,
    saturation_table,
    write_sweep,
)

TINY = SweepConfig(
    techniques=("active", "lazy_primary"),
    seeds=(0, 1),
    rates=(0.1, 0.3),
    duration=100.0,
    clients=2_000,
)


def _point(rate, goodput, p99):
    return {
        "technique": "t",
        "seed": 0,
        "rate": rate,
        "offered_load": rate,
        "goodput": goodput,
        "shed_rate": 0.0,
        "p99_latency": p99,
    }


class TestCells:
    def test_cell_count_is_full_cross_product(self):
        assert len(TINY.cells()) == 2 * 2 * 2

    def test_cells_are_picklable_plain_dicts(self):
        for cell in TINY.cells():
            json.dumps(cell)  # plain scalars only

    def test_run_cell_returns_json_safe_row(self):
        cell = dict(TINY.cells()[0])
        row = run_cell(cell)
        json.dumps(row)
        assert row["technique"] == "active"
        assert row["summary"]["requests"] > 0
        assert row["converged"] is True


class TestMergeDeterminism:
    def test_merge_independent_of_row_order(self):
        rows = [run_cell(cell) for cell in TINY.cells()]
        shuffled = list(rows)
        random.Random(42).shuffle(shuffled)
        merged_a = merge_rows(rows, TINY)
        merged_b = merge_rows(shuffled, TINY)
        assert json.dumps(merged_a, sort_keys=True) == json.dumps(
            merged_b, sort_keys=True
        )

    def test_serial_matches_parallel(self):
        config = SweepConfig(
            techniques=("active",), seeds=(0, 1), rates=(0.1, 0.3),
            duration=100.0, clients=2_000,
        )
        serial = run_sweep(config, jobs=1)
        parallel = run_sweep(config, jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_rerun_is_byte_identical(self, tmp_path):
        config = SweepConfig(
            techniques=("lazy_primary",), seeds=(0,), rates=(0.2,),
            duration=100.0, clients=2_000,
        )
        paths_a = write_sweep(run_sweep(config, jobs=1), str(tmp_path / "a"))
        paths_b = write_sweep(run_sweep(config, jobs=1), str(tmp_path / "b"))
        for kind in paths_a:
            assert open(paths_a[kind], "rb").read() == open(
                paths_b[kind], "rb"
            ).read()


class TestSaturation:
    def test_knee_on_p99_blowup(self):
        rows = [
            _point(0.1, 0.1, 10.0),
            _point(0.2, 0.2, 12.0),
            _point(0.4, 0.4, 50.0),  # p99 > 2x the low-load baseline
        ]
        table = saturation_table(rows)
        assert table[0]["knee_rate"] == 0.4

    def test_knee_on_goodput_collapse(self):
        rows = [
            _point(0.1, 0.1, 10.0),
            _point(0.2, 0.15, 11.0),  # goodput < 0.9 x offered
        ]
        table = saturation_table(rows)
        assert table[0]["knee_rate"] == 0.2

    def test_no_knee_inside_swept_range(self):
        rows = [_point(0.1, 0.1, 10.0), _point(0.2, 0.2, 11.0)]
        table = saturation_table(rows)
        assert table[0]["knee_rate"] is None

    def test_seeds_average_per_rate(self):
        a = dict(_point(0.1, 0.2, 10.0), seed=0)
        b = dict(_point(0.1, 0.4, 20.0), seed=1)
        table = saturation_table([a, b])
        point = table[0]["points"][0]
        assert point["goodput"] == 0.3
        assert point["p99_latency"] == 15.0

    def test_render_marks_knee(self):
        rows = [
            _point(0.1, 0.1, 10.0),
            _point(0.4, 0.1, 50.0),
        ]
        text = render_saturation(saturation_table(rows))
        assert "<-- knee" in text
        assert "technique" in text


class TestWriteSweep:
    def test_writes_json_and_table(self, tmp_path):
        merged = merge_rows(
            [run_cell(dict(TINY.cells()[0]))], TINY
        )
        paths = write_sweep(merged, str(tmp_path / "out"))
        doc = json.load(open(paths["json"]))
        assert doc["rows"] and doc["saturation"]
        assert open(paths["table"]).read().strip()
