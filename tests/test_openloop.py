"""Tests for the open-loop engine and system-edge admission control."""

import json

import pytest

from repro import DB_TECHNIQUES, DS_TECHNIQUES
from repro.core import AdmissionConfig
from repro.core.admission import (
    SHED_DEADLINE_QUEUED,
    SHED_QUEUE_FULL,
)
from repro.obs import write_artifacts
from repro.workload import ArrivalSpec, run_openloop

ALL_TECHNIQUES = DS_TECHNIQUES + DB_TECHNIQUES


class TestArrivalSpec:
    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(process="pareto")

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(rate=0.0)
        with pytest.raises(ValueError):
            ArrivalSpec(rate=-1.0)

    def test_burst_needs_consistent_window(self):
        with pytest.raises(ValueError):
            ArrivalSpec(process="burst", burst_rate=0.0)
        with pytest.raises(ValueError):
            ArrivalSpec(process="burst", burst_rate=2.0,
                        burst_every=50.0, burst_length=80.0)

    def test_diurnal_amplitude_bounded(self):
        with pytest.raises(ValueError):
            ArrivalSpec(process="diurnal", diurnal_amplitude=1.0)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(deadline_budget=0.0)

    def test_burst_rate_at_follows_windows(self):
        spec = ArrivalSpec(process="burst", rate=0.1, burst_rate=2.0,
                           burst_every=100.0, burst_length=20.0)
        assert spec.rate_at(10.0) == 2.0      # inside the first window
        assert spec.rate_at(50.0) == 0.1      # between windows
        assert spec.rate_at(110.0) == 2.0     # inside the second window

    def test_diurnal_rate_oscillates_around_mean(self):
        spec = ArrivalSpec(process="diurnal", rate=1.0,
                           diurnal_period=400.0, diurnal_amplitude=0.5)
        assert spec.rate_at(100.0) == pytest.approx(1.5)   # sin peak
        assert spec.rate_at(300.0) == pytest.approx(0.5)   # sin trough


class TestOpenLoopEngine:
    def test_deterministic_process_paces_arrivals(self):
        system, engine, summary = run_openloop(
            "active",
            arrival=ArrivalSpec(process="deterministic", rate=0.5,
                                duration=100.0, clients=1_000),
            seed=1, settle=50.0,
        )
        # Fixed gaps of 2.0 inside a 100-unit horizon: 49 arrivals (the
        # first fires after one full gap, the horizon is open-ended).
        assert engine.submitted == 49
        assert summary.requests == 49
        assert summary.offered == 49
        assert summary.shed == 0
        assert summary.committed == 49

    def test_served_plus_shed_equals_submitted(self):
        system, engine, summary = run_openloop(
            "lazy_primary",
            arrival=ArrivalSpec(rate=0.3, duration=200.0, clients=5_000),
            admission=AdmissionConfig(rate=0.1, burst=2.0, queue_capacity=4),
            seed=2, settle=100.0,
        )
        assert len(engine.results) + len(engine.shed_results) == engine.submitted
        assert summary.offered == engine.submitted
        assert summary.shed == len(engine.shed_results)

    def test_open_loop_offered_independent_of_technique(self):
        # The arrival schedule draws from its own named streams, so the
        # offered count must not change with protocol-internal randomness.
        arrival = ArrivalSpec(rate=0.2, duration=200.0, clients=2_000)
        offered = {
            run_openloop(name, arrival=arrival, replicas=2, seed=4,
                         settle=100.0)[1].submitted
            for name in ("active", "certification", "lazy_primary")
        }
        assert len(offered) == 1

    def test_sustains_100k_logical_clients(self):
        # Acceptance bar: one deterministic run carries a 10^5+ logical
        # client population (no per-client process) with the admission
        # edge absorbing the overload.
        system, engine, summary = run_openloop(
            "active",
            arrival=ArrivalSpec(process="deterministic", rate=400.0,
                                duration=300.0, clients=1_000_000),
            admission=AdmissionConfig(rate=1.0, burst=8.0, queue_capacity=64),
            seed=11, settle=50.0,
        )
        stats = engine.stats()
        assert summary.offered == 120_000
        assert stats["logical_clients"] >= 100_000
        snap = system.admission.snapshot()
        assert snap["offered"] == (
            snap["admitted"] + snap["shed"] + snap["queued"]
        )
        assert snap["queued"] == 0
        # The admitted stream still commits: goodput survives the overload.
        assert summary.committed > 0
        assert summary.abort_rate == 0.0


class TestSameSeedByteIdentical:
    @pytest.mark.parametrize("technique", ALL_TECHNIQUES)
    def test_summary_and_artifacts_identical(self, technique, tmp_path):
        arrival = ArrivalSpec(rate=0.15, duration=150.0, clients=2_000)

        def one(tag):
            system, engine, summary = run_openloop(
                technique, arrival=arrival, replicas=2, seed=13,
                settle=100.0, observe=True,
            )
            stem = str(tmp_path / f"{technique}-{tag}")
            node_order = system.replica_names + [c.name for c in system.clients]
            paths = write_artifacts(system.observer, stem,
                                    node_order=node_order, title=technique)
            blobs = {
                kind: open(path, "rb").read() for kind, path in paths.items()
            }
            return json.dumps(summary.row(), sort_keys=True), blobs

        row_a, blobs_a = one("a")
        row_b, blobs_b = one("b")
        assert row_a == row_b
        assert blobs_a == blobs_b


class TestAdmissionControl:
    def test_queue_full_sheds(self):
        system, engine, summary = run_openloop(
            "active",
            arrival=ArrivalSpec(process="deterministic", rate=2.0,
                                duration=100.0, clients=1_000),
            admission=AdmissionConfig(rate=0.1, burst=1.0, queue_capacity=3),
            seed=5, settle=100.0,
        )
        reasons = system.admission.shed_by_reason
        assert reasons.get(SHED_QUEUE_FULL, 0) > 0
        assert summary.shed_rate > 0.5

    def test_queued_deadline_expiry_sheds(self):
        system, engine, summary = run_openloop(
            "active",
            arrival=ArrivalSpec(process="deterministic", rate=1.0,
                                duration=50.0, clients=1_000,
                                deadline_budget=15.0),
            admission=AdmissionConfig(rate=0.05, burst=1.0,
                                      queue_capacity=1_000),
            seed=6, settle=200.0,
        )
        reasons = system.admission.shed_by_reason
        assert reasons.get(SHED_DEADLINE_QUEUED, 0) > 0

    def test_conservation_invariant_holds(self):
        system, engine, _ = run_openloop(
            "certification",
            arrival=ArrivalSpec(rate=0.5, duration=150.0, clients=3_000),
            admission=AdmissionConfig(rate=0.2, burst=2.0, queue_capacity=6),
            seed=7, settle=200.0,
        )
        snap = system.admission.snapshot()
        assert snap["offered"] == (
            snap["admitted"] + snap["shed"] + snap["queued"]
        )
        assert snap["offered"] == engine.submitted

    def test_shed_results_carry_shed_reason(self):
        system, engine, _ = run_openloop(
            "active",
            arrival=ArrivalSpec(process="deterministic", rate=2.0,
                                duration=60.0, clients=500),
            admission=AdmissionConfig(rate=0.1, burst=1.0, queue_capacity=2),
            seed=8, settle=100.0,
        )
        assert engine.shed_results
        for result in engine.shed_results:
            assert not result.committed
            assert result.reason.startswith("shed:")

    def test_observer_records_edge_series(self):
        system, engine, _ = run_openloop(
            "active",
            arrival=ArrivalSpec(process="deterministic", rate=1.0,
                                duration=80.0, clients=500),
            admission=AdmissionConfig(rate=0.2, burst=2.0, queue_capacity=2),
            seed=9, settle=100.0, observe=True,
        )
        series = system.observer.metrics.series_snapshot()
        assert "ts.offered" in series
        assert "ts.admitted" in series
        assert "ts.shed" in series
        assert sum(c for _, c in series["ts.offered"].counts()) == engine.submitted

    def test_rates_helper_reports_per_unit_rate(self):
        system, engine, _ = run_openloop(
            "active",
            arrival=ArrivalSpec(process="deterministic", rate=1.0,
                                duration=80.0, clients=500),
            admission=AdmissionConfig(rate=0.2, burst=2.0, queue_capacity=2),
            seed=9, settle=100.0, observe=True,
        )
        series = system.observer.metrics.series_snapshot()["ts.offered"]
        for (t_rate, rate), (t_count, count) in zip(series.rates(),
                                                    series.counts()):
            assert t_rate == t_count
            assert rate == pytest.approx(count / series.width)

    def test_no_admission_means_no_gating(self):
        system, engine, summary = run_openloop(
            "active",
            arrival=ArrivalSpec(process="deterministic", rate=1.0,
                                duration=60.0, clients=500),
            seed=10, settle=100.0,
        )
        assert system.admission is None
        assert summary.offered == summary.requests
        assert summary.shed == 0
