"""Tests for the local transaction manager (strict 2PL engine)."""

import pytest

from repro.db import TransactionManager, TransactionUpdates, UpdateRecord
from repro.errors import TransactionAborted
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def tm(sim):
    return TransactionManager(sim, site="s1")


def run_txn(sim, gen):
    handle = sim.spawn(gen)
    sim.run()
    return handle


class TestSingleTransaction:
    def test_read_of_unwritten_item_is_none(self, sim, tm):
        def work():
            txn = tm.begin()
            value = yield txn.read("x")
            txn.commit()
            return value
        assert run_txn(sim, work()).result is None

    def test_write_then_commit_installs_value(self, sim, tm):
        def work():
            txn = tm.begin()
            yield txn.write("x", 42)
            return txn.commit()
        updates = run_txn(sim, work()).result
        assert tm.store.read("x") == 42
        assert [r.item for r in updates.records] == ["x"]
        assert updates.records[0].version == 1

    def test_writes_deferred_until_commit(self, sim, tm):
        def work():
            txn = tm.begin()
            yield txn.write("x", 99)
            assert tm.store.read("x") is None, "write must not hit store before commit"
            txn.commit()
        handle = run_txn(sim, work())
        assert not handle.failed
        assert tm.store.read("x") == 99

    def test_read_your_own_writes(self, sim, tm):
        def work():
            txn = tm.begin()
            yield txn.write("x", "mine")
            value = yield txn.read("x")
            txn.commit()
            return value
        assert run_txn(sim, work()).result == "mine"

    def test_abort_discards_writes_and_releases_locks(self, sim, tm):
        def work():
            txn = tm.begin()
            yield txn.write("x", "doomed")
            txn.abort()
        run_txn(sim, work())
        assert tm.store.read("x") is None
        assert tm.locks.holders_of("x") == {}
        assert tm.aborted_count == 1

    def test_operations_after_commit_rejected(self, sim, tm):
        def work():
            txn = tm.begin()
            yield txn.write("x", 1)
            txn.commit()
            try:
                yield txn.read("x")
            except TransactionAborted:
                return "rejected"
        assert run_txn(sim, work()).result == "rejected"

    def test_readset_tracks_versions(self, sim, tm):
        tm.store.write("x", "v1")
        tm.store.write("x", "v2")
        def work():
            txn = tm.begin()
            yield txn.read("x")
            versions = dict(txn.readset)
            txn.commit()
            return versions
        assert run_txn(sim, work()).result == {"x": 2}

    def test_duplicate_txn_id_rejected(self, sim, tm):
        tm.begin("dup")
        with pytest.raises(ValueError):
            tm.begin("dup")

    def test_commit_appends_to_wal(self, sim, tm):
        def work():
            txn = tm.begin()
            yield txn.write("x", 1)
            yield txn.write("y", 2)
            return txn.commit()
        updates = run_txn(sim, work()).result
        assert len(tm.wal) == 1
        assert updates.commit_lsn == 0
        assert [r.item for r in tm.wal.entry(0).records] == ["x", "y"]


class TestConcurrency:
    def test_writer_blocks_second_writer_until_commit(self, sim, tm):
        order = []
        def first():
            txn = tm.begin("t1")
            yield txn.write("x", "first")
            yield sim.timeout(10.0)
            txn.commit()
            order.append(("first", sim.now))
        def second():
            yield sim.timeout(1.0)
            txn = tm.begin("t2")
            yield txn.write("x", "second")
            txn.commit()
            order.append(("second", sim.now))
        sim.spawn(first())
        sim.spawn(second())
        sim.run()
        assert sorted(order) == [("first", 10.0), ("second", 10.0)], (
            "t2 must wait for t1's commit at t=10 before writing"
        )
        assert tm.store.read("x") == "second"

    def test_deadlock_aborts_one_and_other_commits(self, sim, tm):
        outcomes = {}
        def worker(name, first, second):
            txn = tm.begin(name)
            try:
                yield txn.write(first, name)
                yield sim.timeout(5.0)
                yield txn.write(second, name)
                txn.commit()
                outcomes[name] = "committed"
            except TransactionAborted:
                txn.abort()
                outcomes[name] = "aborted"
        sim.spawn(worker("t1", "x", "y"))
        sim.spawn(worker("t2", "y", "x"))
        sim.run()
        assert sorted(outcomes.values()) == ["aborted", "committed"]
        survivor = next(k for k, v in outcomes.items() if v == "committed")
        assert tm.store.read("x") == survivor
        assert tm.store.read("y") == survivor

    def test_readers_run_concurrently(self, sim, tm):
        tm.store.write("x", "shared")
        times = []
        def reader(name):
            txn = tm.begin(name)
            value = yield txn.read("x")
            times.append(sim.now)
            yield sim.timeout(10.0)
            txn.commit()
            return value
        h1 = sim.spawn(reader("r1"))
        h2 = sim.spawn(reader("r2"))
        sim.run()
        assert h1.result == h2.result == "shared"
        assert times == [0.0, 0.0], "read locks must not serialise readers"

    def test_abort_all_active(self, sim, tm):
        def worker():
            txn = tm.begin("t1")
            yield txn.write("x", 1)
            yield sim.timeout(100.0)
            txn.commit()
        sim.spawn(worker())
        sim.run(until=5.0)
        victims = tm.abort_all_active("failover")
        assert victims == ["t1"]
        sim.run()
        assert tm.store.read("x") is None


class TestApplyUpdates:
    def test_apply_installs_remote_writeset(self, sim, tm):
        updates = TransactionUpdates(
            "remote:t1",
            (UpdateRecord("x", "from-primary", 3), UpdateRecord("y", 7, 1)),
        )
        tm.apply_updates(updates)
        assert tm.store.read("x") == "from-primary"
        assert tm.store.version("x") == 3
        assert len(tm.wal) == 1

    def test_apply_is_idempotent(self, sim, tm):
        updates = TransactionUpdates("r:t1", (UpdateRecord("x", 5, 2),))
        tm.apply_updates(updates)
        tm.apply_updates(updates, log=False)
        assert tm.store.version("x") == 2
        assert tm.store.read("x") == 5

    def test_wire_roundtrip(self, sim):
        updates = TransactionUpdates("t9", (UpdateRecord("a", [1, 2], 4),), commit_lsn=7)
        assert TransactionUpdates.from_wire(updates.as_wire()) == updates
