"""Unit and property tests for the strict-2PL lock manager."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import LockManager, READ, WRITE
from repro.errors import TransactionAborted
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def lm(sim):
    return LockManager(sim, name="site")


def granted(future):
    return future.done and not future.failed


class TestGranting:
    def test_free_item_grants_immediately(self, sim, lm):
        assert granted(lm.acquire("t1", "x", WRITE))

    def test_readers_share(self, sim, lm):
        assert granted(lm.acquire("t1", "x", READ))
        assert granted(lm.acquire("t2", "x", READ))

    def test_writer_blocks_behind_reader(self, sim, lm):
        lm.acquire("t1", "x", READ)
        blocked = lm.acquire("t2", "x", WRITE)
        assert not blocked.done
        lm.release_all("t1")
        assert granted(blocked)

    def test_reader_blocks_behind_writer(self, sim, lm):
        lm.acquire("t1", "x", WRITE)
        blocked = lm.acquire("t2", "x", READ)
        assert not blocked.done
        lm.release_all("t1")
        assert granted(blocked)

    def test_reentrant_same_mode(self, sim, lm):
        lm.acquire("t1", "x", WRITE)
        assert granted(lm.acquire("t1", "x", WRITE))
        assert granted(lm.acquire("t1", "x", READ))  # W covers R

    def test_sole_reader_upgrades(self, sim, lm):
        lm.acquire("t1", "x", READ)
        assert granted(lm.acquire("t1", "x", WRITE))
        assert lm.holds("t1", "x", WRITE)

    def test_upgrade_waits_for_other_readers(self, sim, lm):
        lm.acquire("t1", "x", READ)
        lm.acquire("t2", "x", READ)
        upgrade = lm.acquire("t1", "x", WRITE)
        assert not upgrade.done
        lm.release_all("t2")
        assert granted(upgrade)

    def test_fifo_among_writers(self, sim, lm):
        lm.acquire("t1", "x", WRITE)
        second = lm.acquire("t2", "x", WRITE)
        third = lm.acquire("t3", "x", WRITE)
        lm.release_all("t1")
        assert granted(second) and not third.done
        lm.release_all("t2")
        assert granted(third)

    def test_reader_does_not_overtake_queued_writer(self, sim, lm):
        lm.acquire("t1", "x", READ)
        writer = lm.acquire("t2", "x", WRITE)
        late_reader = lm.acquire("t3", "x", READ)
        assert not late_reader.done, "reader starving a writer"
        lm.release_all("t1")
        assert granted(writer)
        lm.release_all("t2")
        assert granted(late_reader)

    def test_unknown_mode_rejected(self, sim, lm):
        with pytest.raises(ValueError):
            lm.acquire("t1", "x", "exclusive")


class TestDeadlock:
    def test_two_transaction_cycle_aborts_youngest(self, sim, lm):
        lm.acquire("t1", "x", WRITE)
        lm.acquire("t2", "y", WRITE)
        wait1 = lm.acquire("t1", "y", WRITE)   # t1 -> t2
        wait2 = lm.acquire("t2", "x", WRITE)   # t2 -> t1: cycle
        assert lm.deadlocks_detected == 1
        assert wait2.failed and isinstance(wait2.exception, TransactionAborted)
        # victim's release unblocks the survivor
        lm.release_all("t2")
        assert granted(wait1)

    def test_three_transaction_cycle_detected(self, sim, lm):
        lm.acquire("t1", "a", WRITE)
        lm.acquire("t2", "b", WRITE)
        lm.acquire("t3", "c", WRITE)
        lm.acquire("t1", "b", WRITE)
        lm.acquire("t2", "c", WRITE)
        w = lm.acquire("t3", "a", WRITE)
        assert lm.deadlocks_detected == 1
        assert w.failed

    def test_upgrade_deadlock_between_two_readers(self, sim, lm):
        lm.acquire("t1", "x", READ)
        lm.acquire("t2", "x", READ)
        up1 = lm.acquire("t1", "x", WRITE)
        up2 = lm.acquire("t2", "x", WRITE)
        assert lm.deadlocks_detected >= 1
        assert up1.failed or up2.failed
        victim = "t1" if up1.failed else "t2"
        lm.release_all(victim)
        survivor_future = up2 if victim == "t1" else up1
        assert granted(survivor_future)

    def test_no_false_deadlock_on_plain_contention(self, sim, lm):
        lm.acquire("t1", "x", WRITE)
        lm.acquire("t2", "x", WRITE)
        lm.acquire("t3", "x", WRITE)
        assert lm.deadlocks_detected == 0


class TestTimeouts:
    def test_lock_wait_timeout_aborts_request(self, sim, lm):
        lm.acquire("t1", "x", WRITE)
        blocked = lm.acquire("t2", "x", WRITE, timeout=10.0)
        sim.run(until=20.0)
        assert blocked.failed
        assert "timeout" in str(blocked.exception)
        assert lm.timeouts == 1

    def test_timeout_cancelled_when_granted_in_time(self, sim, lm):
        lm.acquire("t1", "x", WRITE)
        blocked = lm.acquire("t2", "x", WRITE, timeout=10.0)
        sim.schedule(2.0, lm.release_all, "t1")
        sim.run(until=50.0)
        assert granted(blocked)
        assert lm.timeouts == 0


class TestReleaseSemantics:
    def test_release_all_clears_queued_requests(self, sim, lm):
        lm.acquire("t1", "x", WRITE)
        lm.acquire("t2", "x", WRITE)
        lm.release_all("t2")  # abort while waiting
        assert lm.waiting_count("x") == 0
        lm.release_all("t1")
        assert lm.holders_of("x") == {}

    def test_release_unknown_txn_is_noop(self, sim, lm):
        lm.release_all("ghost")


@st.composite
def lock_scripts(draw):
    txns = [f"t{i}" for i in range(draw(st.integers(2, 4)))]
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(txns),
                st.sampled_from(["acquire_r", "acquire_w", "release"]),
                st.sampled_from(["x", "y", "z"]),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return steps


class TestSafetyProperty:
    @given(lock_scripts())
    @settings(max_examples=120, deadline=None)
    def test_never_conflicting_holders(self, steps):
        """Invariant: at no point do two transactions hold conflicting locks."""
        sim = Simulator(seed=0)
        lm = LockManager(sim)
        for txn, action, item in steps:
            if action == "release":
                lm.release_all(txn)
            else:
                mode = READ if action == "acquire_r" else WRITE
                lm.acquire(txn, item, mode)
            sim.run()
            for locked_item in ("x", "y", "z"):
                holders = lm.holders_of(locked_item)
                writers = [t for t, m in holders.items() if m == WRITE]
                if writers:
                    assert len(holders) == 1, (
                        f"writer shares {locked_item}: {holders} after {steps}"
                    )
