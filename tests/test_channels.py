"""Unit tests for reliable point-to-point channels."""

from helpers import GroupHarness


def received(harness, name):
    return harness.delivered[name]


def wire(harness, inner_type="app"):
    for name in harness.names:
        harness.transports[name].on(inner_type, lambda src, p, n=name: harness.delivered[n].append((src, p)))


class TestReliableTransport:
    def test_basic_delivery(self):
        h = GroupHarness(2)
        wire(h)
        h.transports["n0"].send("n1", "app", text="hello")
        h.run(until=50)
        assert received(h, "n1") == [("n0", {"text": "hello"})]

    def test_self_send_delivers_locally(self):
        h = GroupHarness(1)
        wire(h)
        h.transports["n0"].send("n0", "app", x=1)
        h.run(until=10)
        assert received(h, "n0") == [("n0", {"x": 1})]

    def test_exactly_once_under_heavy_loss(self):
        h = GroupHarness(2, seed=5, loss_rate=0.4)
        wire(h)
        for i in range(30):
            h.transports["n0"].send("n1", "app", seq=i)
        h.run(until=2000)
        seqs = [p["seq"] for _, p in received(h, "n1")]
        assert seqs == list(range(30)), "loss must be masked, order preserved, no dupes"

    def test_fifo_across_interleaved_sends(self):
        h = GroupHarness(3, jitter=True, seed=9)
        wire(h)
        for i in range(10):
            h.transports["n0"].send("n2", "app", tag=("a", i))
            h.transports["n1"].send("n2", "app", tag=("b", i))
        h.run(until=500)
        tags = [p["tag"] for _, p in received(h, "n2")]
        a_tags = [t for t in tags if t[0] == "a"]
        b_tags = [t for t in tags if t[0] == "b"]
        assert a_tags == [("a", i) for i in range(10)]
        assert b_tags == [("b", i) for i in range(10)]

    def test_send_to_group_reaches_everyone(self):
        h = GroupHarness(4)
        wire(h)
        h.transports["n0"].send_to_group(h.names, "app", v=7)
        h.run(until=50)
        for name in h.names:
            assert received(h, name) == [("n0", {"v": 7})]

    def test_retransmission_stops_after_ack(self):
        h = GroupHarness(2, retry_interval=3.0)
        wire(h)
        h.transports["n0"].send("n1", "app", x=1)
        h.run(until=500)
        # One data frame (no losses) and no endless retransmission storm:
        # each retransmit would be another rt.data send.
        data_frames = h.net.stats.by_type["rt.data"]
        assert data_frames <= 3

    def test_buffering_before_upcall_registration(self):
        h = GroupHarness(2)
        h.transports["n0"].send("n1", "late", x=1)
        h.run(until=20)
        got = []
        h.transports["n1"].on("late", lambda src, p: got.append((src, p)))
        h.run(until=30)
        assert got == [("n0", {"x": 1})]

    def test_crashed_receiver_never_delivers(self):
        h = GroupHarness(2, retry_interval=2.0)
        wire(h)
        h.nodes["n1"].crash()
        h.transports["n0"].send("n1", "app", x=1)
        h.run(until=100)
        assert received(h, "n1") == []
