"""Unit tests for the consistency oracles and metrics."""

import pytest

from repro.analysis import (
    History,
    Invocation,
    LatencyStats,
    check_linearizable,
    check_one_copy_serializable,
    counter_check,
    expected_counters,
    history_from_results,
    messages_per_request,
    serialization_graph,
    summarize,
)
from repro.core.operations import Operation, Result
from repro.db import DataStore
from repro.errors import ConsistencyViolation
from repro.net import NetworkStats


def inv(kind, item, start, end, output=None, argument=None, func="set", rid=None):
    return Invocation(
        request_id=rid or f"{kind}-{item}-{start}",
        kind=kind,
        item=item,
        argument=argument,
        func=func,
        output=output,
        start=start,
        end=end,
    )


class TestLinearizability:
    def test_empty_history_is_linearizable(self):
        assert check_linearizable(History([])).ok

    def test_sequential_write_then_read(self):
        history = History([
            inv("write", "x", 0, 1, argument=5),
            inv("read", "x", 2, 3, output=5),
        ])
        assert check_linearizable(history).ok

    def test_read_of_never_written_value_fails(self):
        history = History([
            inv("write", "x", 0, 1, argument=5),
            inv("read", "x", 2, 3, output=99),
        ])
        assert not check_linearizable(history).ok

    def test_stale_read_after_write_completes_fails(self):
        # write finished at t=1, read started at t=2 but returned the old
        # value: a real-time violation.
        history = History([
            inv("write", "x", 0, 1, argument="new"),
            inv("read", "x", 2, 3, output=None),
        ])
        assert not check_linearizable(history, initial=None).ok

    def test_concurrent_read_may_see_either_value(self):
        history = History([
            inv("write", "x", 0, 10, argument="new"),
            inv("read", "x", 1, 2, output=None),   # overlaps the write
        ])
        assert check_linearizable(history, initial=None).ok

    def test_counter_semantics_constrain_order(self):
        history = History([
            inv("update", "x", 0, 5, output=1, argument=1, func="add", rid="a"),
            inv("update", "x", 0, 5, output=2, argument=1, func="add", rid="b"),
            inv("read", "x", 6, 7, output=2),
        ])
        assert check_linearizable(history, initial=None).ok

    def test_duplicate_increment_outputs_fail(self):
        # Two increments both returning 1 cannot be linearized.
        history = History([
            inv("update", "x", 0, 5, output=1, argument=1, func="add", rid="a"),
            inv("update", "x", 0, 5, output=1, argument=1, func="add", rid="b"),
        ])
        assert not check_linearizable(history, initial=None).ok

    def test_items_checked_independently(self):
        history = History([
            inv("write", "x", 0, 1, argument=1),
            inv("write", "y", 0, 1, argument=2),
            inv("read", "x", 2, 3, output=1),
            inv("read", "y", 2, 3, output=2),
        ])
        assert check_linearizable(history).ok


def result(ops_values, rid, committed=True, start=0.0, end=1.0):
    operations = tuple(op for op, _v in ops_values)
    values = [v for _op, v in ops_values]
    return Result(
        request_id=rid, committed=committed, values=values,
        submitted_at=start, completed_at=end, operations=operations,
    )


class TestCounterCheck:
    def test_matching_counters_pass(self):
        results = [
            result([(Operation.update("x", "add", 5), 5)], "t1"),
            result([(Operation.update("x", "add", 3), 8)], "t2"),
        ]
        store = DataStore()
        store.write("x", 8)
        assert counter_check(results, {"r0": store}, strict=False) == []

    def test_lost_update_detected(self):
        results = [
            result([(Operation.update("x", "add", 5), 5)], "t1"),
            result([(Operation.update("x", "add", 3), 3)], "t2"),
        ]
        store = DataStore()
        store.write("x", 5)  # t2's increment was lost
        violations = counter_check(results, {"r0": store}, strict=False)
        assert len(violations) == 1
        with pytest.raises(ConsistencyViolation):
            counter_check(results, {"r0": store}, strict=True)

    def test_aborted_transactions_do_not_count(self):
        results = [
            result([(Operation.update("x", "add", 5), 5)], "t1"),
            result([(Operation.update("x", "add", 100), None)], "t2", committed=False),
        ]
        assert expected_counters(results) == {"x": 5}

    def test_non_add_workload_rejected(self):
        results = [result([(Operation.write("x", 1), None)], "t1")]
        with pytest.raises(ValueError):
            expected_counters(results)


class TestSerializationGraph:
    def test_chain_of_increments_is_acyclic(self):
        results = [
            result([(Operation.update("x", "add", 1), 1)], "t1"),
            result([(Operation.update("x", "add", 1), 2)], "t2"),
            result([(Operation.update("x", "add", 1), 3)], "t3"),
        ]
        graph = serialization_graph(results)
        assert graph["t1"] == {"t2"} and graph["t2"] == {"t3"}
        assert check_one_copy_serializable(results, strict=False) is None

    def test_cycle_detected(self):
        # t1 read t2's write and t2 read t1's write: impossible serially.
        results = [
            result([
                (Operation.read("x"), "B"), (Operation.write("y", "A"), None),
            ], "t1"),
            result([
                (Operation.read("y"), "A"), (Operation.write("x", "B"), None),
            ], "t2"),
        ]
        cycle = check_one_copy_serializable(results, strict=False)
        assert cycle is not None
        with pytest.raises(ConsistencyViolation):
            check_one_copy_serializable(results)

    def test_duplicate_write_values_rejected(self):
        results = [
            result([(Operation.write("x", "same"), None)], "t1"),
            result([(Operation.write("x", "same"), None)], "t2"),
        ]
        with pytest.raises(ValueError):
            serialization_graph(results)


class TestMetrics:
    def test_latency_stats_percentiles(self):
        stats = LatencyStats.of([1.0, 2.0, 3.0, 4.0, 100.0])
        assert stats.count == 5
        assert stats.p50 == 3.0
        assert stats.maximum == 100.0

    def test_latency_stats_empty(self):
        stats = LatencyStats.of([])
        assert stats.count == 0 and stats.mean == 0.0

    def test_summarize_counts_and_rates(self):
        results = [
            result([(Operation.read("x"), 1)], "a", start=0, end=2),
            result([(Operation.read("x"), 1)], "b", start=1, end=5),
            result([(Operation.read("x"), None)], "c", committed=False, start=2, end=3),
        ]
        summary = summarize(results)
        assert summary.requests == 3
        assert summary.committed == 2
        assert summary.abort_rate == pytest.approx(1 / 3)
        assert summary.duration == 5.0

    def test_messages_per_request_excludes_heartbeats(self):
        stats = NetworkStats()
        stats.sent = 100
        stats.by_type["fd.heartbeat"] = 60
        stats.by_type["rt.data"] = 40
        assert messages_per_request(stats, 10) == 4.0

    def test_history_from_results_skips_multi_op(self):
        results = [
            result([(Operation.read("x"), 1)], "single"),
            result([(Operation.read("x"), 1), (Operation.read("y"), 2)], "multi"),
        ]
        history = history_from_results(results)
        assert len(history) == 1
