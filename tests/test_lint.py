"""Tests for repro.lint: each rule family with passing and violating
fixtures, suppression/baseline mechanics, output formats, and the
assertion that the shipped tree itself is clean."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import Baseline, Diagnostic, all_rules, run_lint
from repro.lint.cli import main as lint_main

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "lint-baseline.txt"


def tree(tmp_path, files):
    """Materialise ``{relative-path: source}`` under a src/repro layout."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return [str(tmp_path)]


def rules_of(diagnostics):
    return sorted({d.rule for d in diagnostics})


# ---------------------------------------------------------------------------
# Determinism family
# ---------------------------------------------------------------------------

def test_global_random_call_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/bad.py": "import random\nx = random.random()\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["D101"]
    assert found[0].line == 2


def test_seeded_random_instance_allowed(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/good.py":
            "import random\nrng = random.Random(42)\nx = rng.random()\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_from_random_import_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/db/bad.py": "from random import choice\n",
        "src/repro/db/good.py": "from random import Random\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["D102"]
    assert all("bad.py" in d.file for d in found)


def test_wall_clock_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/net/bad.py":
            "import time\nimport os\n"
            "t = time.time()\ne = os.urandom(8)\n",
        "src/repro/net/bad2.py": "from time import monotonic\n",
        "src/repro/net/bad3.py":
            "import datetime\nnow = datetime.datetime.now()\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["D103"]
    assert len(found) == 4


def test_id_and_hash_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/sim/bad.py":
            "def name_for(obj):\n    return f'proc-{id(obj):x}'\n"
            "def seed_for(name):\n    return hash(name) % 97\n",
        "src/repro/sim/good.py":
            "class Key:\n"
            "    def __hash__(self):\n"
            "        return hash((self.a, self.b))\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["D104", "D105"]
    assert all("bad.py" in d.file for d in found)


def test_set_iteration_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/groupcomm/bad.py":
            "pending = set()\n"
            "for item in pending:\n"
            "    print(item)\n"
            "ordered = list({'a', 'b'})\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["D106"]
    assert len(found) == 2


def test_sorted_set_iteration_allowed(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/groupcomm/good.py":
            "pending = set()\n"
            "for item in sorted(pending):\n"
            "    print(item)\n"
            "ok = all(x > 0 for x in pending)\n"
            "n = len(pending)\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_self_attribute_set_tracked_across_methods(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/bad.py":
            "class Proto:\n"
            "    def __init__(self):\n"
            "        self._executed = set()\n"
            "    def replay(self):\n"
            "        for rid in self._executed:\n"
            "            print(rid)\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["D106"]


def test_module_level_counter_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/db/bad.py":
            "import itertools\n"
            "from itertools import count\n"
            "_ids = itertools.count(1)\n"
            "class Table:\n"
            "    _shared = count()\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["D107"]
    assert len(found) == 2


def test_instance_counter_allowed(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/db/good.py":
            "import itertools\n"
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._ids = itertools.count(1)\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_determinism_rules_scoped_to_core_packages(tmp_path):
    # The same construct outside the deterministic core is not flagged:
    # analysis consumes traces after the run.
    paths = tree(tmp_path, {
        "src/repro/analysis/ok.py": "import random\nx = random.random()\n",
    })
    assert run_lint(paths, baseline=None) == []


# ---------------------------------------------------------------------------
# Layering family
# ---------------------------------------------------------------------------

def test_upward_import_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/sim/bad.py": "from repro.core import ReplicatedSystem\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["L201"]
    assert "layer 'sim'" in found[0].message


def test_relative_upward_import_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/net/bad.py": "from ..groupcomm import abcast\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["L201"]


def test_downward_import_allowed(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/net/good.py":
            "from repro.errors import ReproError\nfrom ..sim import Simulator\n",
        "src/repro/core/good.py": "from ..groupcomm import abcast\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_package_init_relative_imports_resolve_to_own_package(tmp_path):
    # ``from .child import x`` inside pkg/__init__.py targets pkg itself.
    paths = tree(tmp_path, {
        "src/repro/db/__init__.py": "from .storage import DataStore\n",
        "src/repro/db/storage.py": "class DataStore: pass\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_undeclared_package_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/shiny/new.py": "x = 1\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["L202"]
    assert "ALLOWED_DEPS" in found[0].message


# ---------------------------------------------------------------------------
# Protocol-contract family
# ---------------------------------------------------------------------------

PROTOCOL_PRELUDE = """\
from repro.core.phases import AC, END, EX, RE, SC, PhaseDescriptor, PhaseStep
from repro.core.protocols.base import ProtocolInfo, ReplicaProtocol
"""


def protocol_class(name, steps, body):
    step_src = ", ".join(f"PhaseStep({s})" for s in steps)
    return (
        f"class {name}(ReplicaProtocol):\n"
        f"    info = ProtocolInfo(\n"
        f"        name='{name.lower()}', title='{name}', figure='Figure 0',\n"
        f"        community='ds',\n"
        f"        descriptor=PhaseDescriptor(\n"
        f"            technique='{name.lower()}', steps=({step_src},),\n"
        f"        ),\n"
        f"    )\n"
        f"{body}"
    )


def test_consistent_protocol_is_clean(tmp_path):
    body = (
        "    def handle_request(self, request, client):\n"
        "        self.phase(request.request_id, EX)\n"
        "        self.phase(request.request_id, AC, '2pc')\n"
        "        self.respond(client, request, committed=True)\n"
    )
    paths = tree(tmp_path, {
        "src/repro/core/protocols/fixture.py":
            PROTOCOL_PRELUDE
            + protocol_class("GoodProto", ["RE", "EX", "AC", "END"], body),
    })
    assert run_lint(paths, baseline=None) == []


def test_missing_protocol_info_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/protocols/fixture.py":
            PROTOCOL_PRELUDE
            + "class Anon(ReplicaProtocol):\n"
              "    def handle_request(self, request, client):\n"
              "        self.respond(client, request, committed=True)\n",
    })
    found = run_lint(paths, baseline=None)
    assert "P301" in rules_of(found)


def test_generator_handle_request_flagged(tmp_path):
    body = (
        "    def handle_request(self, request, client):\n"
        "        values = yield self.tm.begin()\n"
        "        self.phase(request.request_id, EX)\n"
        "        self.respond(client, request, committed=True)\n"
    )
    paths = tree(tmp_path, {
        "src/repro/core/protocols/fixture.py":
            PROTOCOL_PRELUDE
            + protocol_class("GenProto", ["RE", "EX", "END"], body),
    })
    found = run_lint(paths, baseline=None)
    assert "P302" in rules_of(found)
    assert any("synchronously" in d.message for d in found)


def test_spawned_generator_helper_is_fine(tmp_path):
    body = (
        "    def handle_request(self, request, client):\n"
        "        self.replica.node.spawn(self._execute(request, client))\n"
        "    def _execute(self, request, client):\n"
        "        self.phase(request.request_id, EX)\n"
        "        yield self.sim.timeout(1.0)\n"
        "        self.respond(client, request, committed=True)\n"
    )
    paths = tree(tmp_path, {
        "src/repro/core/protocols/fixture.py":
            PROTOCOL_PRELUDE
            + protocol_class("SpawnProto", ["RE", "EX", "END"], body),
    })
    assert run_lint(paths, baseline=None) == []


def test_emitting_undeclared_phase_flagged(tmp_path):
    # Declares RE EX END but also emits AC: drifted from its row.
    body = (
        "    def handle_request(self, request, client):\n"
        "        self.phase(request.request_id, EX)\n"
        "        self.phase(request.request_id, AC, '2pc')\n"
        "        self.respond(client, request, committed=True)\n"
    )
    paths = tree(tmp_path, {
        "src/repro/core/protocols/fixture.py":
            PROTOCOL_PRELUDE
            + protocol_class("DriftProto", ["RE", "EX", "END"], body),
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["P303"]
    assert any("emits phase AC" in d.message for d in found)


def test_declared_phase_never_emitted_flagged(tmp_path):
    # Claims Server Coordination in its row but has no SC emission.
    body = (
        "    def handle_request(self, request, client):\n"
        "        self.phase(request.request_id, EX)\n"
        "        self.respond(client, request, committed=True)\n"
    )
    paths = tree(tmp_path, {
        "src/repro/core/protocols/fixture.py":
            PROTOCOL_PRELUDE
            + protocol_class("LiarProto", ["RE", "SC", "EX", "END"], body),
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["P303"]
    assert any("declares phase SC" in d.message for d in found)


def test_unknown_phase_literal_flagged(tmp_path):
    body = (
        "    def handle_request(self, request, client):\n"
        "        self.phase(request.request_id, 'WARMUP')\n"
        "        self.respond(client, request, committed=True)\n"
    )
    paths = tree(tmp_path, {
        "src/repro/core/protocols/fixture.py":
            PROTOCOL_PRELUDE
            + protocol_class("OddProto", ["RE", "END"], body),
    })
    found = run_lint(paths, baseline=None)
    assert "P304" in rules_of(found)


def test_all_registered_techniques_statically_verified():
    """The contract rule must actually resolve — not skip — every
    registered technique's declared phase row."""
    import ast

    from repro import REGISTRY
    from repro.lint.contracts import _declared_phases, _find_info_assign

    protocol_dir = REPO / "src" / "repro" / "core" / "protocols"
    resolved = {}
    for path in protocol_dir.glob("*.py"):
        module = ast.parse(path.read_text())
        for node in ast.walk(module):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _find_info_assign(node)
            if info is None:
                continue
            declared = _declared_phases(info)
            assert declared, f"{node.name}: phase row not statically resolvable"
            resolved[node.name] = declared
    assert len(resolved) >= len(REGISTRY)
    for cls in REGISTRY.values():
        assert cls.__name__ in resolved


def test_misdeclaring_a_real_technique_is_caught(tmp_path):
    """Acceptance fixture: drop one declared phase from a real registered
    technique's source and the contract rule reports the drift."""
    source = (REPO / "src/repro/core/protocols/active.py").read_text()
    mutated = source.replace("PhaseStep(EX),\n", "")
    assert mutated != source, "mutation did not apply"
    paths = tree(tmp_path, {
        "src/repro/core/protocols/active.py": mutated,
        "src/repro/core/protocols/base.py":
            (REPO / "src/repro/core/protocols/base.py").read_text(),
    })
    found = [d for d in run_lint(paths, baseline=None) if d.rule == "P303"]
    assert found
    assert any("emits phase EX" in d.message for d in found)


# ---------------------------------------------------------------------------
# Message-flow family
# ---------------------------------------------------------------------------

def test_typoed_send_is_undeliverable_and_handler_dead(tmp_path):
    # One transposed letter: the send reaches nobody (M401) and the
    # registered handler starves (M402) — the exact failure mode the
    # family exists for.
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('flow.request', self._on_req)\n"
            "    def kick(self):\n"
            "        self.node.send('peer', 'flow.requst', item=1)\n"
            "    def _on_req(self, message):\n"
            "        print(message['item'])\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["M401", "M402"]
    assert any("flow.requst" in d.message for d in found)


def test_matched_send_and_handler_clean(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('flow.request', self._on_req)\n"
            "    def kick(self):\n"
            "        self.node.send('peer', 'flow.request', item=1)\n"
            "    def _on_req(self, message):\n"
            "        print(message['item'])\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_message_types_resolved_across_modules(tmp_path):
    # The send spells its type through an f-string constant imported from
    # another module; the handler builds the same string from an __init__
    # parameter default.  The symbolic evaluator must unify them.
    paths = tree(tmp_path, {
        "src/repro/net/kinds.py":
            "PREFIX = 'svc'\nREQ = f'{PREFIX}.req'\n",
        "src/repro/core/client.py":
            "from ..net.kinds import REQ\n"
            "class Client:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "    def go(self):\n"
            "        self.node.call('server', REQ, timeout=5.0, q=1)\n",
        "src/repro/core/server.py":
            "class Server:\n"
            "    def __init__(self, node, prefix='svc'):\n"
            "        self._req = f'{prefix}.req'\n"
            "        node.on(self._req, self._on_req)\n"
            "    def _on_req(self, message):\n"
            "        print(message['q'])\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_payload_key_never_sent_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('flow.request', self._on_req)\n"
            "    def kick(self):\n"
            "        self.node.send('peer', 'flow.request', item=1)\n"
            "    def _on_req(self, message):\n"
            "        print(message['item'], message['missing'])\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["M403"]
    assert "missing" in found[0].message
    assert "KeyError" in found[0].message


def test_optional_get_and_open_splat_mute_schema_check(tmp_path):
    paths = tree(tmp_path, {
        # .get() reads are optional by definition.
        "src/repro/core/a.py":
            "class A:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('a.msg', self._on)\n"
            "    def kick(self):\n"
            "        self.node.send('peer', 'a.msg', item=1)\n"
            "    def _on(self, message):\n"
            "        print(message.get('maybe'))\n",
        # A **splat send makes the type's schema open.
        "src/repro/core/b.py":
            "class B:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('b.msg', self._on)\n"
            "    def kick(self, extras):\n"
            "        self.node.send('peer', 'b.msg', **extras)\n"
            "    def _on(self, message):\n"
            "        print(message['anything'])\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_reply_without_call_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('flow.request', self._on_req)\n"
            "    def kick(self):\n"
            "        self.node.send('peer', 'flow.request', item=1)\n"
            "    def _on_req(self, message):\n"
            "        self.node.reply(message, ok=True)\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["M404"]
    assert found[0].severity == "warning"
    assert "fire-and-forget" in found[0].message


def test_reply_to_a_call_is_clean(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('flow.request', self._on_req)\n"
            "    def kick(self):\n"
            "        self.node.call('peer', 'flow.request', timeout=5.0, item=1)\n"
            "    def _on_req(self, message):\n"
            "        self.node.reply(message, ok=True)\n",
    })
    assert run_lint(paths, baseline=None) == []


GROUP_FIXTURE_PRIMITIVE = (
    "class ReliableBroadcast:\n"
    "    def __init__(self, node, transport, group, deliver,\n"
    "                 relay=True, trace=None, channel='rb.msg'):\n"
    "        self.deliver = deliver\n"
    "        self.channel = channel\n"
    "    def broadcast(self, mtype, **body):\n"
    "        pass\n"
)


def test_broadcast_mtype_guard_mismatch_flagged(tmp_path):
    # The deliver callback guards for 'apply' but the binding only ever
    # broadcasts 'aply': undeliverable on that binding (M401) and the
    # guard waits forever (M402).
    paths = tree(tmp_path, {
        "src/repro/groupcomm/fixture.py":
            GROUP_FIXTURE_PRIMITIVE
            + "class App:\n"
              "    def __init__(self, node, transport, group):\n"
              "        self._rb = ReliableBroadcast(node, transport, group,\n"
              "                                     self._on_deliver,\n"
              "                                     channel='app.msg')\n"
              "    def go(self):\n"
              "        self._rb.broadcast('aply', item=1)\n"
              "    def _on_deliver(self, origin, mtype, body):\n"
              "        if mtype != 'apply':\n"
              "            return\n"
              "        print(body['item'])\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["M401", "M402"]
    assert any("aply" in d.message for d in found)
    assert any("guards for mtype 'apply'" in d.message for d in found)


def test_broadcast_binding_matched_is_clean(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/groupcomm/fixture.py":
            GROUP_FIXTURE_PRIMITIVE
            + "class App:\n"
              "    def __init__(self, node, transport, group):\n"
              "        self._rb = ReliableBroadcast(node, transport, group,\n"
              "                                     self._on_deliver,\n"
              "                                     channel='app.msg')\n"
              "    def go(self):\n"
              "        self._rb.broadcast('apply', item=1)\n"
              "    def _on_deliver(self, origin, mtype, body):\n"
              "        if mtype != 'apply':\n"
              "            return\n"
              "        print(body['item'])\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_broadcast_body_key_never_sent_flagged(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/groupcomm/fixture.py":
            GROUP_FIXTURE_PRIMITIVE
            + "class App:\n"
              "    def __init__(self, node, transport, group):\n"
              "        self._rb = ReliableBroadcast(node, transport, group,\n"
              "                                     self._on_deliver,\n"
              "                                     channel='app.msg')\n"
              "    def go(self):\n"
              "        self._rb.broadcast('apply', item=1)\n"
              "    def _on_deliver(self, origin, mtype, body):\n"
              "        print(body['absent'])\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["M403"]
    assert "absent" in found[0].message


def test_on_default_catches_everything(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Sink:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on_default(self._on_any)\n"
            "    def kick(self):\n"
            "        self.node.send('peer', 'whatever.type', item=1)\n"
            "    def _on_any(self, message):\n"
            "        print(message)\n",
    })
    assert run_lint(paths, baseline=None) == []


# ---------------------------------------------------------------------------
# Suppression, baseline, CLI
# ---------------------------------------------------------------------------

def test_noqa_suppresses_named_rule(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/ok.py":
            "import random\n"
            "x = random.random()  # repro: noqa D101\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_noqa_bare_suppresses_all_rules(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/ok.py":
            "import random\n"
            "x = random.random()  # repro: noqa\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_noqa_for_other_rule_does_not_suppress(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/bad.py":
            "import random\n"
            "x = random.random()  # repro: noqa D103\n",
    })
    assert rules_of(run_lint(paths, baseline=None)) == ["D101"]


def test_baseline_grandfathers_existing_findings(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/bad.py": "import random\nx = random.random()\n",
    })
    found = run_lint(paths, baseline=None)
    assert found
    baseline_file = tmp_path / "baseline.txt"
    Baseline.from_diagnostics(found).save(str(baseline_file))
    assert run_lint(paths, baseline=str(baseline_file)) == []
    # A *new* finding still surfaces.
    (tmp_path / "src/repro/core/bad.py").write_text(
        "import random\nx = random.random()\ny = random.randint(0, 3)\n"
    )
    remaining = run_lint(paths, baseline=str(baseline_file))
    assert len(remaining) == 1
    assert "randint" in remaining[0].message


def test_select_and_ignore(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/bad.py":
            "import random\nfrom repro.workload import driver\n"
            "x = random.random()\n",
    })
    assert rules_of(run_lint(paths, select=["D101"], baseline=None)) == ["D101"]
    assert rules_of(run_lint(paths, select=["L"], baseline=None)) == ["L201"]
    assert rules_of(run_lint(paths, ignore=["D"], baseline=None)) == ["L201"]
    with pytest.raises(KeyError):
        run_lint(paths, select=["Z999"], baseline=None)


def test_syntax_error_reported_not_raised(tmp_path):
    paths = tree(tmp_path, {"src/repro/core/broken.py": "def f(:\n"})
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["E001"]


def test_cli_json_output_round_trips(tmp_path, capsys):
    tree(tmp_path, {
        "src/repro/core/bad.py": "import random\nx = random.random()\n",
    })
    exit_code = lint_main([str(tmp_path), "--format", "json", "--no-baseline"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload[0]["rule"] == "D101"
    assert payload[0]["line"] == 2
    assert set(payload[0]) == {"file", "line", "col", "rule", "severity",
                              "message"}


def test_cli_exit_zero_and_list_rules(tmp_path, capsys):
    tree(tmp_path, {"src/repro/core/ok.py": "x = 1\n"})
    assert lint_main([str(tmp_path), "--no-baseline"]) == 0
    assert lint_main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule_id in ("D101", "D106", "L201", "P303"):
        assert rule_id in listing


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    missing = str(tmp_path / "nope")
    assert lint_main([missing]) == 2
    assert "no such file or directory" in capsys.readouterr().err


def test_cli_write_baseline(tmp_path, capsys):
    tree(tmp_path, {
        "src/repro/core/bad.py": "import random\nx = random.random()\n",
    })
    baseline_file = tmp_path / "bl.txt"
    assert lint_main([str(tmp_path), "--write-baseline",
                      "--baseline", str(baseline_file)]) == 0
    assert lint_main([str(tmp_path), "--baseline", str(baseline_file)]) == 0


def test_cli_sarif_carries_same_findings_as_json(tmp_path, capsys):
    tree(tmp_path, {
        "src/repro/core/bad.py":
            "import random\n"
            "x = random.random()\n"
            "def kick(node):\n"
            "    node.send('peer', 'no.handler', item=1)\n",
    })
    assert lint_main([str(tmp_path), "--format", "json", "--no-baseline"]) == 1
    as_json = json.loads(capsys.readouterr().out)
    assert lint_main([str(tmp_path), "--format", "sarif", "--no-baseline"]) == 1
    sarif = json.loads(capsys.readouterr().out)

    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    from_json = {(d["file"], d["line"], d["rule"]) for d in as_json}
    from_sarif = {
        (
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
            r["locations"][0]["physicalLocation"]["region"]["startLine"],
            r["ruleId"],
        )
        for r in run["results"]
    }
    assert from_json == from_sarif
    assert {"D101", "M401"} <= {r["ruleId"] for r in run["results"]}
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {r["ruleId"] for r in run["results"]} <= declared


def test_cli_catalog_write_and_check(tmp_path, capsys):
    source = {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('flow.request', self._on_req)\n"
            "    def kick(self):\n"
            "        self.node.send('peer', 'flow.request', item=1)\n"
            "    def _on_req(self, message):\n"
            "        print(message['item'])\n",
    }
    paths = tree(tmp_path, source)
    markdown = tmp_path / "messages.md"
    assert lint_main(paths + ["--write-catalog", str(markdown)]) == 0
    capsys.readouterr()
    sibling = tmp_path / "messages.json"
    assert markdown.exists() and sibling.exists()
    assert "flow.request" in markdown.read_text()
    payload = json.loads(sibling.read_text())
    record = next(
        t for t in payload["types"] if t["type"] == "flow.request"
    )
    assert record["payload_keys"] == ["item"]
    assert record["required_reads"] == ["item"]

    # Fresh catalog: check mode passes.
    assert lint_main(paths + ["--check-catalog", str(markdown)]) == 0
    capsys.readouterr()

    # Source drifts: check mode fails and names the stale files.
    flow = tmp_path / "src" / "repro" / "core" / "flow.py"
    flow.write_text(
        flow.read_text().replace("item=1", "item=1, extra=2")
    )
    assert lint_main(paths + ["--check-catalog", str(markdown)]) == 1
    stderr = capsys.readouterr().err
    assert "out of date" in stderr
    assert "--write-catalog" in stderr


# ---------------------------------------------------------------------------
# Wait-graph family
# ---------------------------------------------------------------------------

def test_w501_untimed_call_fires(tmp_path):
    # The call has a registered, replying handler (so no M4xx noise) but
    # no timeout: a crash of the callee hangs the caller forever.
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('flow.req', self._on_req)\n"
            "    def kick(self):\n"
            "        yield self.node.call('peer', 'flow.req', item=1)\n"
            "    def _on_req(self, message):\n"
            "        self.node.reply(message, ok=True)\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["W501"]
    assert "timeout" in found[0].message
    assert "flow.req" in found[0].message


def test_w501_untimed_lock_fires(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/db/work.py":
            "class Work:\n"
            "    def __init__(self, locks):\n"
            "        self.locks = locks\n"
            "    def go(self, txn):\n"
            "        yield self.locks.acquire(txn, 'alpha', 'w')\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["W501"]
    assert "deadlock" in found[0].message


def test_w501_timed_sites_clean(tmp_path):
    # timeout= on the call and the acquire, and txn.read/write (which
    # always forward the manager's lock_timeout) all pass.
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node, locks):\n"
            "        self.node = node\n"
            "        self.locks = locks\n"
            "        node.on('flow.req', self._on_req)\n"
            "    def kick(self, txn):\n"
            "        yield self.locks.acquire(txn, 'alpha', 'w', timeout=5.0)\n"
            "        value = yield txn.read('beta')\n"
            "        yield self.node.call('peer', 'flow.req', item=value,\n"
            "                             timeout=10.0)\n"
            "    def _on_req(self, message):\n"
            "        self.node.reply(message, ok=True)\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_w502_wait_cycle_fires(tmp_path):
    # Each handler spawns a generator that blocks on a reply the *other*
    # handler serves; both calls are timed, so only the cycle itself is
    # the finding: a static distributed deadlock.
    paths = tree(tmp_path, {
        "src/repro/core/ping.py":
            "class Ping:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('ping.req', self._on_req)\n"
            "    def _on_req(self, message):\n"
            "        self.node.spawn(self._serve(message))\n"
            "    def _serve(self, message):\n"
            "        yield self.node.call('peer', 'pong.req', timeout=5.0)\n"
            "        self.node.reply(message, ok=True)\n",
        "src/repro/core/pong.py":
            "class Pong:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('pong.req', self._on_req)\n"
            "    def _on_req(self, message):\n"
            "        self.node.spawn(self._serve(message))\n"
            "    def _serve(self, message):\n"
            "        yield self.node.call('peer', 'ping.req', timeout=5.0)\n"
            "        self.node.reply(message, ok=True)\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["W502"]
    assert "Ping._on_req" in found[0].message
    assert "Pong._on_req" in found[0].message


def test_w502_acyclic_wait_chain_clean(tmp_path):
    # The 2PC-participant shape: the serving handler answers without
    # blocking on anything of its own, so the wait chain is acyclic.
    paths = tree(tmp_path, {
        "src/repro/core/ping.py":
            "class Ping:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('ping.req', self._on_req)\n"
            "    def kick(self):\n"
            "        yield self.node.call('peer', 'ping.req', timeout=5.0)\n"
            "    def _on_req(self, message):\n"
            "        self.node.spawn(self._serve(message))\n"
            "    def _serve(self, message):\n"
            "        yield self.node.call('peer', 'pong.req', timeout=5.0)\n"
            "        self.node.reply(message, ok=True)\n",
        "src/repro/core/pong.py":
            "class Pong:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('pong.req', self._on_req)\n"
            "    def _on_req(self, message):\n"
            "        self.node.reply(message, ok=True)\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_w503_lock_order_inversion_fires(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/db/orders.py":
            "class Orders:\n"
            "    def __init__(self, locks):\n"
            "        self.locks = locks\n"
            "    def forward(self, txn):\n"
            "        yield self.locks.acquire(txn, 'alpha', 'w', timeout=5.0)\n"
            "        yield self.locks.acquire(txn, 'beta', 'w', timeout=5.0)\n"
            "    def backward(self, txn):\n"
            "        yield self.locks.acquire(txn, 'beta', 'w', timeout=5.0)\n"
            "        yield self.locks.acquire(txn, 'alpha', 'w', timeout=5.0)\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["W503"]
    assert "alpha" in found[0].message and "beta" in found[0].message
    assert "deadlock" in found[0].message


def test_w503_consistent_order_and_shared_modes_clean(tmp_path):
    paths = tree(tmp_path, {
        # Same order on both paths: a global lock order exists.
        "src/repro/db/same.py":
            "class Same:\n"
            "    def __init__(self, locks):\n"
            "        self.locks = locks\n"
            "    def one(self, txn):\n"
            "        yield self.locks.acquire(txn, 'alpha', 'w', timeout=5.0)\n"
            "        yield self.locks.acquire(txn, 'beta', 'w', timeout=5.0)\n"
            "    def two(self, txn):\n"
            "        yield self.locks.acquire(txn, 'alpha', 'w', timeout=5.0)\n"
            "        yield self.locks.acquire(txn, 'beta', 'w', timeout=5.0)\n",
        # Inverted order but all shared locks: readers coexist.
        "src/repro/db/readers.py":
            "class Readers:\n"
            "    def __init__(self, locks):\n"
            "        self.locks = locks\n"
            "    def one(self, txn):\n"
            "        yield self.locks.acquire(txn, 'gamma', 'r', timeout=5.0)\n"
            "        yield self.locks.acquire(txn, 'delta', 'r', timeout=5.0)\n"
            "    def two(self, txn):\n"
            "        yield self.locks.acquire(txn, 'delta', 'r', timeout=5.0)\n"
            "        yield self.locks.acquire(txn, 'gamma', 'r', timeout=5.0)\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_w504_untimed_call_under_lock_fires(tmp_path):
    # The lock is timed, the call is not: W501 flags the call itself and
    # W504 flags making it while the lock is held (starvation on crash).
    paths = tree(tmp_path, {
        "src/repro/core/mixed.py":
            "class Mixed:\n"
            "    def __init__(self, node, locks):\n"
            "        self.node = node\n"
            "        self.locks = locks\n"
            "        node.on('mx.ack', self._on_ack)\n"
            "    def _on_ack(self, message):\n"
            "        self.node.reply(message, ok=True)\n"
            "    def commit(self, txn):\n"
            "        yield self.locks.acquire(txn, 'alpha', 'w', timeout=5.0)\n"
            "        yield self.node.call('peer', 'mx.ack')\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["W501", "W504"]
    w504 = next(d for d in found if d.rule == "W504")
    assert "holding the lock" in w504.message


def test_w504_cross_function_lock_context(tmp_path):
    # The lock and the call live in different functions: the rule must
    # follow the call chain to see the helper blocks while locked.
    paths = tree(tmp_path, {
        "src/repro/core/mixed.py":
            "class Mixed:\n"
            "    def __init__(self, node, locks):\n"
            "        self.node = node\n"
            "        self.locks = locks\n"
            "        node.on('mx.ack', self._on_ack)\n"
            "    def _on_ack(self, message):\n"
            "        self.node.reply(message, ok=True)\n"
            "    def commit(self, txn):\n"
            "        yield self.locks.acquire(txn, 'alpha', 'w', timeout=5.0)\n"
            "        yield from self._notify()\n"
            "    def _notify(self):\n"
            "        yield self.node.call('peer', 'mx.ack')\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["W501", "W504"]


def test_w504_timed_call_under_lock_clean(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/mixed.py":
            "class Mixed:\n"
            "    def __init__(self, node, locks):\n"
            "        self.node = node\n"
            "        self.locks = locks\n"
            "        node.on('mx.ack', self._on_ack)\n"
            "    def _on_ack(self, message):\n"
            "        self.node.reply(message, ok=True)\n"
            "    def commit(self, txn):\n"
            "        yield self.locks.acquire(txn, 'alpha', 'w', timeout=5.0)\n"
            "        yield self.node.call('peer', 'mx.ack', timeout=5.0)\n",
    })
    assert run_lint(paths, baseline=None) == []


# ---------------------------------------------------------------------------
# Interference family
# ---------------------------------------------------------------------------

# The technique-entry machinery resolves protocol classes through the
# MRO, so interference fixtures ship a stub base module the prelude
# imports resolve to (the real one is not part of the fixture tree).
INTERFERENCE_BASE = (
    "class ProtocolInfo:\n"
    "    def __init__(self, **kwargs):\n"
    "        self.kwargs = kwargs\n"
    "class ReplicaProtocol:\n"
    "    pass\n"
)


def interference_tree(tmp_path, fixture_source):
    return tree(tmp_path, {
        "src/repro/core/protocols/base.py": INTERFERENCE_BASE,
        "src/repro/core/protocols/fixture.py":
            PROTOCOL_PRELUDE + fixture_source,
    })


def test_r601_stale_snapshot_across_wait_fires(tmp_path):
    # `cached` captures self.epoch_state before the call and is used
    # after resumption while _on_bump (dispatchable meanwhile) writes it.
    paths = interference_tree(
        tmp_path,
        protocol_class("StaleProto", ["RE", "EX", "END"], (
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('sp.bump', self._on_bump)\n"
            "    def handle_request(self, request, client):\n"
            "        self.phase(request.request_id, EX)\n"
            "        self.node.spawn(self._serve(request, client))\n"
            "    def _serve(self, request, client):\n"
            "        cached = self.epoch_state\n"
            "        yield self.node.call('peer', 'sp.bump', value=1,\n"
            "                             timeout=5.0)\n"
            "        self.respond(client, request, committed=True,\n"
            "                     values=[cached])\n"
            "    def _on_bump(self, message):\n"
            "        self.epoch_state = message['value']\n"
            "        self.node.reply(message, ok=True)\n"
        )),
    )
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["R601"]
    assert "self.epoch_state" in found[0].message
    assert "re-read" in found[0].message


def test_r601_post_wait_reread_clean(tmp_path):
    # Same shape, but the attribute is read *after* the wait: no
    # snapshot crosses a suspension, so nothing can go stale.
    paths = interference_tree(
        tmp_path,
        protocol_class("FreshProto", ["RE", "EX", "END"], (
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('fp.bump', self._on_bump)\n"
            "    def handle_request(self, request, client):\n"
            "        self.phase(request.request_id, EX)\n"
            "        self.node.spawn(self._serve(request, client))\n"
            "    def _serve(self, request, client):\n"
            "        yield self.node.call('peer', 'fp.bump', value=1,\n"
            "                             timeout=5.0)\n"
            "        cached = self.epoch_state\n"
            "        self.respond(client, request, committed=True,\n"
            "                     values=[cached])\n"
            "    def _on_bump(self, message):\n"
            "        self.epoch_state = message['value']\n"
            "        self.node.reply(message, ok=True)\n"
        )),
    )
    assert run_lint(paths, baseline=None) == []


def test_r602_unrevalidated_guard_fires(tmp_path):
    # is_primary is checked, the handler suspends on a call, and the
    # client-visible respond happens without re-checking the role.
    paths = interference_tree(
        tmp_path,
        protocol_class("GuardProto", ["RE", "EX", "END"], (
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('gp.ack', self._on_ack)\n"
            "    def handle_request(self, request, client):\n"
            "        self.phase(request.request_id, EX)\n"
            "        self.node.spawn(self._serve(request, client))\n"
            "    def _serve(self, request, client):\n"
            "        if not self.is_primary:\n"
            "            return\n"
            "        yield self.node.call('peer', 'gp.ack', timeout=5.0)\n"
            "        self.respond(client, request, committed=True)\n"
            "    def _on_ack(self, message):\n"
            "        self.node.reply(message, ok=True)\n"
        )),
    )
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["R602"]
    assert "self.is_primary" in found[0].message
    assert "re-check" in found[0].message


def test_r602_fenced_guard_clean(tmp_path):
    # The positive fencing shape: the guard is re-validated after the
    # wait, before the externally-visible respond.
    paths = interference_tree(
        tmp_path,
        protocol_class("FencedProto", ["RE", "EX", "END"], (
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('fn.ack', self._on_ack)\n"
            "    def handle_request(self, request, client):\n"
            "        self.phase(request.request_id, EX)\n"
            "        self.node.spawn(self._serve(request, client))\n"
            "    def _serve(self, request, client):\n"
            "        if not self.is_primary:\n"
            "            return\n"
            "        yield self.node.call('peer', 'fn.ack', timeout=5.0)\n"
            "        if not self.is_primary:\n"
            "            return\n"
            "        self.respond(client, request, committed=True)\n"
            "    def _on_ack(self, message):\n"
            "        self.node.reply(message, ok=True)\n"
        )),
    )
    assert run_lint(paths, baseline=None) == []


def test_r603_conflicting_rebinds_fire(tmp_path):
    # Two dispatchable entries rebind self.cursor, one after a blocking
    # wait, with no common lock: a lost-update window.
    paths = interference_tree(
        tmp_path,
        protocol_class("RaceProto", ["RE", "EX", "END"], (
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('rp.sync', self._on_sync)\n"
            "        node.on('rp.ping', self._on_ping)\n"
            "    def handle_request(self, request, client):\n"
            "        self.phase(request.request_id, EX)\n"
            "        self.node.spawn(self._serve(request, client))\n"
            "    def _serve(self, request, client):\n"
            "        yield self.node.call('peer', 'rp.ping', timeout=5.0)\n"
            "        self.cursor = request.request_id\n"
            "        self.respond(client, request, committed=True)\n"
            "    def gossip(self):\n"
            "        yield self.node.call('peer', 'rp.sync', cursor=1,\n"
            "                             timeout=5.0)\n"
            "    def _on_sync(self, message):\n"
            "        self.cursor = message['cursor']\n"
            "        self.node.reply(message, ok=True)\n"
            "    def _on_ping(self, message):\n"
            "        self.node.reply(message, ok=True)\n"
        )),
    )
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["R603"]
    assert "'cursor'" in found[0].message
    assert "no common lock" in found[0].message


def test_r603_common_lock_and_counters_clean(tmp_path):
    # Both writers acquire the same concrete lock item before rebinding
    # (and augmented counters are atomic under cooperative scheduling).
    paths = interference_tree(
        tmp_path,
        protocol_class("LockedProto", ["RE", "EX", "END"], (
            "    def __init__(self, node, locks):\n"
            "        self.node = node\n"
            "        self.locks = locks\n"
            "        node.on('lk.sync', self._on_sync)\n"
            "    def handle_request(self, request, client):\n"
            "        self.phase(request.request_id, EX)\n"
            "        self.node.spawn(self._serve(request, client))\n"
            "    def _serve(self, request, client):\n"
            "        yield self.locks.acquire(request, 'cursor', 'w',\n"
            "                                 timeout=5.0)\n"
            "        self.cursor = request.request_id\n"
            "        self.hits += 1\n"
            "        self.respond(client, request, committed=True)\n"
            "    def gossip(self):\n"
            "        yield self.node.call('peer', 'lk.sync', cursor=1,\n"
            "                             timeout=5.0)\n"
            "    def _on_sync(self, message):\n"
            "        self.node.spawn(self._sync(message))\n"
            "    def _sync(self, message):\n"
            "        yield self.locks.acquire(message, 'cursor', 'w',\n"
            "                                 timeout=5.0)\n"
            "        self.cursor = message['cursor']\n"
            "        self.hits += 1\n"
            "        self.node.reply(message, ok=True)\n"
        )),
    )
    assert run_lint(paths, baseline=None) == []


def test_r604_payload_mutation_fires(tmp_path):
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('wd.req', self._on_req)\n"
            "    def kick(self):\n"
            "        yield self.node.call('peer', 'wd.req', item=1,\n"
            "                             timeout=5.0)\n"
            "    def _on_req(self, message):\n"
            "        message['seen'] = True\n"
            "        self.node.reply(message, ok=True)\n",
    })
    found = run_lint(paths, baseline=None)
    assert rules_of(found) == ["R604"]
    assert "item assignment" in found[0].message
    assert "copy before" in found[0].message


def test_r604_copy_first_clean(tmp_path):
    # Rebinding the parameter to a copy first makes later mutations
    # local: the received payload itself is never touched.
    paths = tree(tmp_path, {
        "src/repro/core/flow.py":
            "class Widget:\n"
            "    def __init__(self, node):\n"
            "        self.node = node\n"
            "        node.on('wd.req', self._on_req)\n"
            "    def kick(self):\n"
            "        yield self.node.call('peer', 'wd.req', item=1,\n"
            "                             timeout=5.0)\n"
            "    def _on_req(self, message):\n"
            "        original = message\n"
            "        message = dict(original)\n"
            "        message['seen'] = True\n"
            "        self.node.reply(original, ok=True)\n",
    })
    assert run_lint(paths, baseline=None) == []


def test_cli_only_family_filters_rules(tmp_path, capsys):
    paths = tree(tmp_path, {
        "src/repro/core/clock.py":
            "import time\n"
            "def now():\n"
            "    return time.time()\n",
    })
    # The D1xx wall-clock finding is invisible through the M4 family...
    assert lint_main(paths + ["--only-family", "M4", "--no-baseline"]) == 0
    capsys.readouterr()
    # ...reported through its own family...
    assert lint_main(paths + ["--only-family", "D1", "--no-baseline"]) == 1
    assert "time.time" in capsys.readouterr().out
    # ...and --select narrows further *within* the chosen families.
    assert lint_main(
        paths + ["--only-family", "D1", "--select", "D101", "--no-baseline"]
    ) == 0
    capsys.readouterr()
    # Unknown family names are usage errors, not silence.
    assert lint_main(paths + ["--only-family", "X9"]) == 2
    assert "unknown rule family" in capsys.readouterr().err


def test_sarif_rules_table_documents_whole_registry(capsys):
    # Satellite of the W5xx PR: the SARIF driver table must document
    # every registered rule with real metadata, not placeholders, so CI
    # annotations link into docs/linting.md even for rules that did not
    # fire in a given run.
    from repro.lint.diagnostics import render_sarif

    log = json.loads(render_sarif([]))
    entries = log["runs"][0]["tool"]["driver"]["rules"]
    declared = {entry["id"] for entry in entries}
    assert {r.id for r in all_rules()} == declared
    assert {"W501", "W502", "W503", "W504"} <= declared
    assert {"R601", "R602", "R603", "R604"} <= declared
    for entry in entries:
        assert entry["helpUri"].startswith("docs/linting.md"), entry["id"]
        assert entry["shortDescription"]["text"], entry["id"]
        assert entry["fullDescription"]["text"], entry["id"]
        if entry["id"].startswith("W"):
            assert entry["helpUri"].endswith("#wait-graph-w5xx"), entry["id"]
        if entry["id"].startswith("R"):
            assert entry["helpUri"].endswith("#interference-r6xx"), entry["id"]


def test_rule_catalogue_has_docs():
    for entry in all_rules():
        assert entry.doc, f"rule {entry.id} has no documentation"
        assert entry.summary
        assert entry.severity in ("error", "warning")


def test_diagnostic_fingerprint_ignores_line_numbers():
    a = Diagnostic("f.py", 10, "D101", "error", "msg")
    b = Diagnostic("f.py", 99, "D101", "error", "msg")
    assert a.fingerprint() == b.fingerprint()


# ---------------------------------------------------------------------------
# The shipped tree is clean
# ---------------------------------------------------------------------------

def test_shipped_tree_is_clean_modulo_baseline():
    baseline = str(BASELINE) if BASELINE.exists() else None
    found = run_lint([str(REPO / "src" / "repro")], baseline=baseline)
    assert found == [], "\n".join(d.render() for d in found)


def test_module_entrypoint_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src/repro", "--format", "json"],
        capture_output=True, text=True, cwd=str(REPO),
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert json.loads(result.stdout) == []
