"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import ProcessInterrupted, SimulationError
from repro.sim import Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator(seed=42)


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_callback_at_time(self, sim):
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_events_run_in_time_order(self, sim):
        seen = []
        sim.schedule(3.0, seen.append, "c")
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self, sim):
        seen = []
        for tag in "abc":
            sim.schedule(1.0, seen.append, tag)
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_cancelled_timer_does_not_fire(self, sim):
        seen = []
        timer = sim.schedule(1.0, seen.append, "x")
        timer.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self, sim):
        timer = sim.schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run()

    def test_run_until_stops_clock_at_bound(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run()
        assert sim.now == 10.0

    def test_nested_scheduling_from_callback(self, sim):
        seen = []
        def outer():
            sim.schedule(2.0, seen.append, sim.now)
        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [1.0]

    def test_determinism_same_seed_same_samples(self):
        a = Simulator(seed=7)
        b = Simulator(seed=7)
        assert [a.rng.random() for _ in range(10)] == [b.rng.random() for _ in range(10)]


class TestFuture:
    def test_result_before_resolution_raises(self, sim):
        future = sim.future()
        with pytest.raises(SimulationError):
            _ = future.result

    def test_set_result(self, sim):
        future = sim.future()
        future.set_result(41)
        assert future.done and future.result == 41

    def test_double_resolve_rejected(self, sim):
        future = sim.future()
        future.set_result(1)
        with pytest.raises(SimulationError):
            future.set_result(2)

    def test_try_set_result_races(self, sim):
        future = sim.future()
        assert future.try_set_result(1) is True
        assert future.try_set_result(2) is False
        assert future.result == 1

    def test_exception_propagates(self, sim):
        future = sim.future()
        future.set_exception(ValueError("boom"))
        assert future.failed
        with pytest.raises(ValueError):
            _ = future.result

    def test_callback_after_resolution_fires_immediately(self, sim):
        future = sim.future()
        future.set_result(3)
        seen = []
        future.add_callback(lambda f: seen.append(f.result))
        assert seen == [3]


class TestProcess:
    def test_timeout_advances_clock(self, sim):
        def proc():
            yield Timeout(2.5)
            return sim.now
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == 2.5

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return sim.now
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == 3.0

    def test_process_waits_on_future(self, sim):
        future = sim.future()
        def proc():
            value = yield future
            return value * 2
        handle = sim.spawn(proc())
        sim.schedule(4.0, future.set_result, 21)
        sim.run()
        assert handle.result == 42

    def test_process_joins_process(self, sim):
        def child():
            yield sim.timeout(3.0)
            return "inner"
        def parent():
            value = yield sim.spawn(child())
            return ("outer", value, sim.now)
        handle = sim.spawn(parent())
        sim.run()
        assert handle.result == ("outer", "inner", 3.0)

    def test_exception_in_process_recorded(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("bad")
        handle = sim.spawn(proc())
        sim.run()
        assert handle.failed
        assert isinstance(handle.exception, RuntimeError)

    def test_failed_future_raises_inside_waiter(self, sim):
        future = sim.future()
        def proc():
            try:
                yield future
            except ValueError:
                return "caught"
        handle = sim.spawn(proc())
        sim.schedule(1.0, future.set_exception, ValueError("x"))
        sim.run()
        assert handle.result == "caught"

    def test_interrupt_while_waiting(self, sim):
        def proc():
            try:
                yield sim.timeout(100.0)
            except ProcessInterrupted as exc:
                return ("interrupted", exc.cause, sim.now)
        handle = sim.spawn(proc())
        sim.schedule(5.0, handle.interrupt, "reason")
        sim.run()
        assert handle.result == ("interrupted", "reason", 5.0)

    def test_interrupt_finished_process_noop(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return 1
        handle = sim.spawn(proc())
        sim.run()
        handle.interrupt("late")
        assert handle.result == 1

    def test_yielding_garbage_fails_process(self, sim):
        def proc():
            yield 42
        handle = sim.spawn(proc())
        sim.run()
        assert handle.failed
        assert isinstance(handle.exception, SimulationError)

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)

    def test_run_until_done(self, sim):
        def proc():
            yield sim.timeout(2.0)
            return "ok"
        handle = sim.spawn(proc())
        assert sim.run_until_done(handle) == "ok"

    def test_run_until_done_unresolvable_raises(self, sim):
        future = sim.future()
        with pytest.raises(SimulationError):
            sim.run_until_done(future)


class TestCombinators:
    def test_any_of_returns_first(self, sim):
        slow = sim.future()
        fast = sim.future()
        sim.schedule(5.0, slow.set_result, "slow")
        sim.schedule(1.0, fast.set_result, "fast")
        def proc():
            index, value = yield sim.any_of([slow, fast])
            return index, value, sim.now
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == (1, "fast", 1.0)

    def test_any_of_with_timeout_waitable(self, sim):
        never = sim.future()
        def proc():
            index, value = yield sim.any_of([never, sim.timeout(3.0, "expired")])
            return index, value
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == (1, "expired")

    def test_all_of_collects_in_order(self, sim):
        a, b = sim.future(), sim.future()
        sim.schedule(2.0, a.set_result, "a")
        sim.schedule(1.0, b.set_result, "b")
        def proc():
            values = yield sim.all_of([a, b])
            return values, sim.now
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == (["a", "b"], 2.0)

    def test_all_of_empty_resolves(self, sim):
        def proc():
            values = yield sim.all_of([])
            return values
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == []

    def test_all_of_fails_fast(self, sim):
        a, b = sim.future(), sim.future()
        sim.schedule(1.0, a.set_exception, ValueError("boom"))
        def proc():
            try:
                yield sim.all_of([a, b])
            except ValueError:
                return sim.now
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == 1.0


class TestRunawayGuard:
    def test_max_events_guard_trips(self, sim):
        def rearm():
            sim.schedule(0.1, rearm)
        sim.schedule(0.1, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestControl:
    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]
        assert sim.pending_events >= 1

    def test_call_soon_runs_after_current_event(self, sim):
        order = []
        def now():
            sim.call_soon(order.append, "later")
            order.append("first")
        sim.schedule(1.0, now)
        sim.run()
        assert order == ["first", "later"]

    def test_pending_events_counts_queue(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2

    def test_repr_smoke(self, sim):
        assert "Simulator" in repr(sim)
        future = sim.future(label="f")
        assert "pending" in repr(future)
        def proc():
            yield sim.timeout(1.0)
        handle = sim.spawn(proc(), name="p")
        assert "alive" in repr(handle)
        sim.run()
        assert "done" in repr(handle)


class TestTimeoutValidation:
    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_nan_timeout_rejected(self):
        # NaN slips through naive `delay < 0` checks (every comparison is
        # False) and would poison the heap's tuple ordering.
        with pytest.raises(SimulationError):
            Timeout(float("nan"))

    def test_nan_timeout_rejected_via_sim(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(float("nan"))


class TestHeapCompaction:
    def test_mass_cancellation_compacts_heap(self, sim):
        timers = [sim.schedule(1_000.0 + i, lambda: None) for i in range(1000)]
        assert sim.pending_events == 1000
        for timer in timers:
            timer.cancel()
        # Lazy deletion plus compaction: the dead entries must not sit in
        # the queue until their distant fire times.
        assert sim.pending_events < 100
        assert sim.dead_events <= sim.pending_events

    def test_compaction_preserves_firing_order(self, sim):
        seen = []
        keep = []
        doomed = []
        for i in range(200):
            keep.append(sim.schedule(10.0 + i, seen.append, i))
            doomed.append(sim.schedule(5_000.0, lambda: None))
        for timer in doomed:
            timer.cancel()  # triggers compaction mid-stream
        sim.run()
        assert seen == list(range(200))

    def test_cancelled_events_do_not_count_as_processed(self, sim):
        sim.schedule(1.0, lambda: None)
        dead = sim.schedule(2.0, lambda: None)
        dead.cancel()
        sim.run()
        assert sim.events_processed == 1


class TestTimeoutFastPath:
    def test_timeout_value_and_clock(self, sim):
        def proc():
            got = yield sim.timeout(5.0, "payload")
            return (sim.now, got)
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == (5.0, "payload")

    def test_timeout_ties_resume_in_spawn_order(self, sim):
        # The slot-based fast path must consume sequence numbers exactly
        # like a full Timer: processes timing out at the same instant
        # resume in the order they yielded.
        order = []
        def proc(tag):
            yield sim.timeout(5.0)
            order.append(tag)
        for tag in ("a", "b", "c"):
            sim.spawn(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_timeout_interrupt_discards_slot(self, sim):
        def proc():
            yield sim.timeout(50.0)
        handle = sim.spawn(proc())
        sim.schedule(1.0, handle.interrupt, ProcessInterrupted("stop"))
        sim.run()
        assert handle.failed
        # The abandoned timeout slot must not resurrect the process.
        assert sim.now == 50.0 or sim.now == 1.0


class TestEmptyCombinators:
    def test_any_of_empty_raises(self, sim):
        # any_of([]) can never resolve; it used to hang the waiter forever.
        with pytest.raises(SimulationError):
            sim.any_of([])

    def test_any_of_empty_raises_inside_process(self, sim):
        def proc():
            yield sim.any_of([])
        handle = sim.spawn(proc())
        sim.run()
        assert isinstance(handle.exception, SimulationError)

    def test_all_of_empty_still_resolves(self, sim):
        def proc():
            values = yield sim.all_of([])
            return values
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == []


class TestStopReset:
    def test_stop_is_not_sticky_across_runs(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append("first"), sim.stop()))
        sim.schedule(2.0, fired.append, "second")
        sim.run()
        assert fired == ["first"]
        # A fresh run() must clear the previous stop request and drain the
        # remaining events; it used to return immediately forever.
        sim.run()
        assert fired == ["first", "second"]

    def test_stop_before_run_does_not_wedge(self, sim):
        sim.stop()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.run()
        assert seen == [1]
