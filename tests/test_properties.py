"""Cross-protocol property tests: randomized workloads, fixed invariants.

Hypothesis draws small update workloads and seeds; every strong-
consistency technique must keep the counter oracle exact and converge;
lazy techniques must converge.  These are end-to-end properties over the
full stack (client -> protocol -> groupcomm/db -> network -> simulator).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Operation, ReplicatedSystem
from repro.analysis import counter_check
from repro.workload import bank_transfer

STRONG = ["active", "passive", "semi_passive", "eager_primary",
          "eager_ue_abcast", "certification"]

workloads = st.lists(
    st.tuples(st.integers(0, 1), st.sampled_from(["x", "y", "z"]), st.integers(1, 9)),
    min_size=1,
    max_size=6,
)


def run_updates(protocol, updates, seed, clients=2):
    system = ReplicatedSystem(
        protocol, replicas=3, clients=clients, seed=seed,
        config={"abcast": "sequencer"},
    )
    results = []

    def loop():
        for client_index, item, amount in updates:
            result = yield system.client(client_index).submit(
                [Operation.update(item, "add", amount)]
            )
            attempts = 0
            while not result.committed and attempts < 8:
                attempts += 1
                result = yield system.client(client_index).submit(
                    [Operation.update(item, "add", amount)]
                )
            results.append(result)
            yield system.sim.timeout(3.0)

    handle = system.sim.spawn(loop())
    system.sim.run_until_done(handle)
    system.settle(500)
    return system, results


class TestStrongProtocolsExactUnderRandomWorkloads:
    @pytest.mark.parametrize("protocol", STRONG)
    @given(updates=workloads, seed=st.integers(0, 50))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_counter_exact_and_converged(self, protocol, updates, seed):
        system, results = run_updates(protocol, updates, seed)
        committed = [r for r in results if r.committed]
        assert len(committed) == len(updates)
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        violations = counter_check(committed, stores, strict=False)
        assert not violations, violations
        assert system.converged()


class TestLazyConvergenceUnderRandomWorkloads:
    @pytest.mark.parametrize("protocol", ["lazy_primary", "lazy_ue"])
    @given(updates=workloads, seed=st.integers(0, 50))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_eventual_convergence(self, protocol, updates, seed):
        system, results = run_updates(protocol, updates, seed)
        assert all(r.committed for r in results)
        assert system.converged(), system.divergent_replicas()


class TestTransactionAtomicityProperty:
    @given(
        transfers=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]),
                      st.sampled_from(["a", "b", "c"]),
                      st.integers(1, 50)),
            min_size=1, max_size=5,
        ),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_transfers_conserve_total_balance(self, transfers, seed):
        """Multi-op transactions (Section 5): money is conserved under
        eager primary copy regardless of the transfer pattern."""
        system = ReplicatedSystem("eager_primary", replicas=3, seed=seed)
        for account in ("a", "b", "c"):
            system.execute([Operation.write(account, 100)])

        def loop():
            for source, target, amount in transfers:
                if source == target:
                    continue
                yield system.client(0).submit(bank_transfer(source, target, amount))
                yield system.sim.timeout(2.0)

        handle = system.sim.spawn(loop())
        system.sim.run_until_done(handle)
        system.settle(300)
        for name in system.replica_names:
            store = system.store_of(name)
            total = sum(store.read(account) for account in ("a", "b", "c"))
            assert total == 300, f"{name}: money created/destroyed ({total})"
        assert system.converged()


class TestScenarioHelpers:
    def test_scenarios_registry(self):
        from repro.workload import SCENARIOS
        for name, factory in SCENARIOS.items():
            spec = factory()
            assert spec.items >= 1, name

    def test_bank_transfer_shape(self):
        ops = bank_transfer("a", "b", 25)
        assert [op.item for op in ops] == ["a", "b"]
        assert [op.argument for op in ops] == [-25, 25]

    def test_hotspot_scenario_concentrates(self):
        from repro.workload import WorkloadGenerator, hotspot
        generator = WorkloadGenerator(hotspot(), seed=1)
        picks = [generator.pick_item() for _ in range(300)]
        hot = sum(1 for p in picks if p in ("item0", "item1"))
        assert hot > 150
