"""Harder view-synchrony scenarios: cascades, exclusion, rejoin."""

import pytest
from helpers import GroupHarness

from repro.groupcomm import ViewSyncGroup


def attach(h, members=None):
    members = members if members is not None else h.names
    groups = {}
    views = {name: [] for name in h.names}
    for name in h.names:
        def on_view(view, n=name):
            views[n].append(view)
        groups[name] = ViewSyncGroup(
            h.nodes[name], h.transports[name], h.detectors[name],
            list(members), h.sink(name), on_view_change=on_view,
            get_state=lambda: None, set_state=lambda s: None,
        )
    return groups, views


class TestCascadedFailures:
    def test_crash_during_view_change_still_converges(self):
        # n4 crashes; while the flush for that change is running, n3
        # crashes too.  Survivors must still agree on a final view.
        h = GroupHarness(5, fd_interval=2.0, fd_timeout=6.0)
        groups, views = attach(h)
        h.sim.schedule(10.0, h.nodes["n4"].crash)
        h.sim.schedule(12.0, h.nodes["n3"].crash)  # mid-change
        h.run(until=800)
        survivors = ["n0", "n1", "n2"]
        finals = {tuple(views[n][-1].members) for n in survivors if views[n]}
        assert finals == {("n0", "n1", "n2")}, finals
        ids = {views[n][-1].view_id for n in survivors}
        assert len(ids) == 1

    def test_view_coordinator_crash_mid_flush(self):
        # n0 (lowest member, hence view-change coordinator and round-0
        # consensus coordinator) dies while coordinating the change for
        # n4's crash; a majority of the old view survives, so the
        # remaining members must still install a view without it.
        h = GroupHarness(5, fd_interval=2.0, fd_timeout=5.0)
        groups, views = attach(h)
        h.sim.schedule(10.0, h.nodes["n4"].crash)
        h.sim.schedule(17.0, h.nodes["n0"].crash)
        h.run(until=800)
        for name in ("n1", "n2", "n3"):
            assert views[name], f"{name} never installed a view"
            assert set(views[name][-1].members) == {"n1", "n2", "n3"}

    def test_half_gone_blocks_membership_by_design(self):
        # With 2 of 4 members dead the old view has no consensus majority:
        # the membership protocol must *block* rather than split-brain.
        h = GroupHarness(4, fd_interval=2.0, fd_timeout=5.0)
        groups, views = attach(h)
        h.sim.schedule(10.0, h.nodes["n3"].crash)
        h.sim.schedule(17.0, h.nodes["n0"].crash)
        h.run(until=600)
        for name in ("n1", "n2"):
            assert not views[name], "no new view may be installed without majority"
            assert groups[name].view.view_id == 0

    def test_messages_flow_after_double_reconfiguration(self):
        h = GroupHarness(5, fd_interval=2.0, fd_timeout=6.0)
        groups, views = attach(h)
        h.sim.schedule(10.0, h.nodes["n4"].crash)
        h.sim.schedule(120.0, h.nodes["n3"].crash)
        h.sim.schedule(300.0, lambda: groups["n1"].vscast("update", tag="final"))
        h.run(until=600)
        for name in ("n0", "n1", "n2"):
            tags = [b.get("tag") for _o, _m, b in h.delivered[name]]
            assert "final" in tags, name


class TestExclusionAndRejoin:
    def test_wrongly_excluded_member_learns_it(self):
        # Partition n2 away: the majority reconfigures without it; after
        # healing, n2 observes it is excluded (primary-partition rule).
        h = GroupHarness(3, fd_interval=2.0, fd_timeout=6.0)
        groups, views = attach(h)
        h.net.partition(["n0", "n1"], ["n2"])
        h.run(until=200)
        h.net.heal()
        h.run(until=400)
        assert set(groups["n0"].view.members) == {"n0", "n1"}
        assert groups["n2"].excluded or groups["n2"].view.view_id == 0

    def test_excluded_member_rejoins_with_join(self):
        h = GroupHarness(3, fd_interval=2.0, fd_timeout=6.0)
        groups, views = attach(h)
        h.net.partition(["n0", "n1"], ["n2"])
        h.run(until=200)
        h.net.heal()
        h.run(until=300)
        groups["n2"].join(["n0"])
        h.run(until=700)
        assert groups["n2"].member
        assert set(groups["n2"].view.members) == {"n0", "n1", "n2"}
        groups["n0"].vscast("update", tag="hello-again")
        h.run(until=800)
        tags = [b.get("tag") for _o, _m, b in h.delivered["n2"]]
        assert "hello-again" in tags
