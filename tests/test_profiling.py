"""Live-run tests for the phase-resolved latency profiler (repro.profiling).

Four layers of guarantees:

* **Determinism** — the same (technique, seed, parameters) produce a
  byte-identical profile document, for every registered technique.
* **Accounting invariants** — for every request of every technique the
  phase times sum exactly to the measured response time (shares to 1.0),
  the critical path never exceeds the response window, and the
  critical-path kinds tile it exactly.
* **Catalog freshness** — the committed ``docs/phasecost.{md,json}``
  match a fresh build (the test-suite twin of ``make phasecost-check``),
  and the renderers are pure functions of the catalog.
* **Satellites** — trace-ring overflow surfaces as a gauge in the
  metrics report (S1); error and chaos paths never leak open or
  mislabelled spans, enforced at export time (S2); span context survives
  spawned processes and the sim tick hook samples without scheduling.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import REGISTRY, Operation, ReplicatedSystem
from repro.errors import ReplicationError, SimulationError
from repro.net.node import _with_span_context
from repro.obs import Observer, PHASES, SpanTracer, assert_no_open_spans
from repro.profiling import (
    build_catalog,
    check_phasecost,
    profile_json,
    profile_run,
    render_catalog_json,
    render_catalog_markdown,
)
from repro.profiling.catalog import JSON_NAME, MD_NAME
from repro.sim import Simulator

REPO = Path(__file__).resolve().parent.parent

TECHNIQUES = sorted(REGISTRY)

# A lighter experiment than the committed catalog's (4 requests/client,
# shorter settle) — determinism and the accounting invariants do not
# depend on the run length, and the fixture drives 2 runs x 10 techniques.
PARAMS = dict(
    seed=3, replicas=3, clients=2, requests_per_client=4,
    think_time=10.0, settle=300.0,
)


@pytest.fixture(scope="module")
def profile_pairs():
    """Two same-seed profiles per technique, for determinism + invariants."""
    pairs = {}
    for name in TECHNIQUES:
        _, _, first = profile_run(name, **PARAMS)
        _, _, second = profile_run(name, **PARAMS)
        pairs[name] = (first, second)
    return pairs


@pytest.fixture(scope="module")
def catalog():
    """One catalog build at the pinned params, shared by the doc tests."""
    return build_catalog()


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

def test_profile_byte_identical_same_seed(profile_pairs):
    for name, (first, second) in profile_pairs.items():
        assert profile_json(first) == profile_json(second), name


def test_profile_depends_on_seed():
    _, _, first = profile_run("eager_ue_locking", **PARAMS)
    params = dict(PARAMS, seed=PARAMS["seed"] + 1)
    _, _, other = profile_run("eager_ue_locking", **params)
    # Not merely the embedded params: the measured requests differ.
    assert first["requests"] != other["requests"]


# ---------------------------------------------------------------------------
# Accounting invariants, per technique, per request
# ---------------------------------------------------------------------------

def test_per_request_invariants(profile_pairs):
    for name, (profile, _) in profile_pairs.items():
        assert profile["requests"], name
        for request in profile["requests"]:
            rid = (name, request["request"])
            rt = request["response_time"]
            assert rt > 0, rid
            assert sum(request["phases"].values()) == pytest.approx(
                rt, abs=1e-9
            ), rid
            assert sum(request["phase_shares"].values()) == pytest.approx(
                1.0, abs=1e-9
            ), rid
            assert request["critical_path_length"] <= rt + 1e-9, rid
            assert sum(request["kinds"].values()) == pytest.approx(
                rt, abs=1e-9
            ), rid
            assert request["dominant_phase"] in PHASES, rid
            assert request["status"] in ("ok", "aborted"), rid


def test_matrix_agrees_with_requests(profile_pairs):
    for name, (profile, _) in profile_pairs.items():
        matrix = profile["matrix"]
        requests = profile["requests"]
        assert matrix["requests"] == len(requests), name
        assert matrix["response_time_total"] == pytest.approx(
            sum(r["response_time"] for r in requests)
        ), name
        assert matrix["dominant_phase"] in PHASES, name
        assert sum(
            row["share"] for row in matrix["phases"].values()
        ) == pytest.approx(1.0), name
        for phase in PHASES:
            assert matrix["phases"][phase]["messages"] == sum(
                r["messages"][phase] for r in requests
            ), (name, phase)
        # Every committed/aborted request produced a profile.
        summary = profile["summary"]
        assert len(requests) == summary["committed"] + summary["aborted"], name


def test_profile_carries_timeseries(profile_pairs):
    for name, (profile, _) in profile_pairs.items():
        series = profile["timeseries"]
        assert "ts.completions" in series, name
        assert "ts.messages" in series, name
        buckets = series["ts.completions"]["buckets"]
        total = sum(bucket["count"] for bucket in buckets.values())
        assert total == profile["summary"]["committed"], name


def test_profile_run_rejects_unknown_technique():
    with pytest.raises(ValueError, match="unknown technique"):
        profile_run("no_such_technique")


# ---------------------------------------------------------------------------
# Catalog freshness and rendering
# ---------------------------------------------------------------------------

def test_phasecost_docs_are_fresh(catalog):
    """The committed docs/phasecost.{md,json} match a fresh build."""
    docs = REPO / "docs"
    assert (docs / MD_NAME).read_text() == render_catalog_markdown(catalog)
    assert (docs / JSON_NAME).read_text() == render_catalog_json(catalog)


def test_catalog_covers_every_technique(catalog):
    assert sorted(catalog["techniques"]) == TECHNIQUES
    for name, entry in catalog["techniques"].items():
        assert entry["matrix"]["requests"] > 0, name


def test_catalog_renderers_are_pure(catalog):
    assert render_catalog_markdown(catalog) == render_catalog_markdown(catalog)
    first = render_catalog_json(catalog)
    assert first == render_catalog_json(catalog)
    assert json.loads(first)["params"]["seed"] == catalog["params"]["seed"]


def test_check_phasecost_reports_missing_and_stale(
    catalog, tmp_path, monkeypatch
):
    import repro.profiling.catalog as catalog_module

    monkeypatch.setattr(catalog_module, "build_catalog", lambda: catalog)
    problems = check_phasecost(str(tmp_path))
    assert len(problems) == 2
    assert all("missing" in p for p in problems)
    (tmp_path / MD_NAME).write_text(render_catalog_markdown(catalog))
    (tmp_path / JSON_NAME).write_text("{}\n")
    problems = check_phasecost(str(tmp_path))
    assert len(problems) == 1 and "stale" in problems[0]
    (tmp_path / JSON_NAME).write_text(render_catalog_json(catalog))
    assert check_phasecost(str(tmp_path)) == []


# ---------------------------------------------------------------------------
# CLI: python -m repro profile
# ---------------------------------------------------------------------------

def test_cli_profile_writes_deterministic_artifacts(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro", "profile", "active",
        "--seed", "3", "--requests", "4", "--out", str(tmp_path),
    ]
    result = subprocess.run(
        command, cwd=REPO, env=env, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr
    assert "dominant" in result.stdout or "RE" in result.stdout
    profile_path = tmp_path / "profile_active_seed3.json"
    counters_path = tmp_path / "profile_active_seed3.counters.trace.json"
    assert profile_path.exists() and counters_path.exists()
    profile = json.loads(profile_path.read_text())
    assert profile["technique"] == "active"
    assert profile["params"]["seed"] == 3
    json.loads(counters_path.read_text())  # valid Perfetto document
    first = profile_path.read_bytes()
    first_counters = counters_path.read_bytes()
    result = subprocess.run(
        command, cwd=REPO, env=env, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr
    assert profile_path.read_bytes() == first
    assert counters_path.read_bytes() == first_counters


def test_cli_profile_rejects_unknown_technique(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "profile", "nope",
         "--out", str(tmp_path)],
        cwd=REPO, env=env, capture_output=True, text=True,
    )
    assert result.returncode == 2
    assert "unknown technique" in result.stderr


# ---------------------------------------------------------------------------
# S1: trace-ring overflow is visible in the metrics report
# ---------------------------------------------------------------------------

def run_small_workload(system, count=6):
    def loop():
        for i in range(count):
            yield system.client(0).submit([Operation.write("x", i)])
            yield system.sim.timeout(10.0)
    handle = system.sim.spawn(loop())
    system.sim.run_until_done(handle)


def test_trace_overflow_surfaces_in_report():
    system = ReplicatedSystem(
        "active", replicas=3, seed=5, observe=True, trace_max_events=8,
    )
    run_small_workload(system)
    observer = system.observer
    observer.finalize()
    assert system.trace.dropped_events > 0
    snapshot = observer.metrics.snapshot()
    assert snapshot["gauges"]["trace.dropped_events"] == pytest.approx(
        float(system.trace.dropped_events)
    )
    assert "trace.dropped_events" in observer.metrics.report()


def test_unbounded_trace_reports_zero_drops():
    system = ReplicatedSystem("active", replicas=3, seed=5, observe=True)
    run_small_workload(system)
    system.observer.finalize()
    snapshot = system.observer.metrics.snapshot()
    assert snapshot["gauges"]["trace.dropped_events"] == 0.0


# ---------------------------------------------------------------------------
# S2: error paths close their spans, and exports enforce it
# ---------------------------------------------------------------------------

class Clock:
    def __init__(self, now=0.0):
        self.now = now


def test_span_contextmanager_tags_errors():
    tracer = SpanTracer(Clock())
    with pytest.raises(ValueError):
        with tracer.span("work", "handle", "n0", trace_id="r1") as span:
            raise ValueError("boom")
    assert span.end is not None
    assert span.status == "error:ValueError"
    assert tracer.current is None  # the context stack unwound


def test_assert_no_open_spans_raises_on_leak():
    observer = Observer(Clock())
    observer.finalize()
    assert_no_open_spans(observer)  # clean observer passes
    leaked = observer.tracer.start("zombie", "handle", "n0", trace_id="r1")
    with pytest.raises(ReplicationError, match="still open"):
        assert_no_open_spans(observer)
    assert leaked.end is None  # the check reports, it does not repair


def test_crash_closes_phase_spans_and_leaks_nothing():
    system = ReplicatedSystem("active", replicas=3, seed=11, observe=True)

    def loop():
        yield system.client(0).submit([Operation.write("x", 1)])
        system.replicas["r1"].node.crash()
        yield system.sim.timeout(50.0)
        yield system.client(0).submit([Operation.write("x", 2)])

    handle = system.sim.spawn(loop())
    system.sim.run_until_done(handle)
    system.sim.run(until=system.sim.now + 100.0)
    observer = system.observer
    observer.finalize()
    assert_no_open_spans(observer)
    statuses = {span.status for span in observer.tracer.spans}
    assert "error:crash" in statuses  # r1's in-flight phases were closed
    assert observer.metrics.snapshot()["counters"]["nodes.crashed"] >= 1


# ---------------------------------------------------------------------------
# Span context across spawned processes
# ---------------------------------------------------------------------------

def test_with_span_context_passes_values_and_returns():
    tracer = SpanTracer(Clock())
    anchor = tracer.start("anchor", "handle", "n0", trace_id="r1")
    pushes = []

    def inner():
        pushes.append(tracer.current)
        received = yield "first"
        pushes.append(tracer.current)
        return received + 1

    wrapped = _with_span_context(tracer, anchor, inner())
    assert next(wrapped) == "first"
    assert tracer.current is None  # popped between resumptions
    with pytest.raises(StopIteration) as stop:
        wrapped.send(41)
    assert stop.value.value == 42
    assert pushes == [anchor, anchor]  # pushed during each resumption
    assert tracer.current is None


def test_with_span_context_propagates_throw():
    tracer = SpanTracer(Clock())
    anchor = tracer.start("anchor", "handle", "n0", trace_id="r1")
    seen = []

    def inner():
        try:
            yield "first"
        except KeyError:
            seen.append(tracer.current)
            yield "caught"

    wrapped = _with_span_context(tracer, anchor, inner())
    assert next(wrapped) == "first"
    assert wrapped.throw(KeyError("k")) == "caught"
    assert seen == [anchor]  # the span was current while handling the throw
    assert tracer.current is None


# ---------------------------------------------------------------------------
# The sim tick hook
# ---------------------------------------------------------------------------

def test_tick_hook_fires_at_bucket_boundaries():
    sim = Simulator(seed=1)
    fired = []
    sim.set_tick_hook(10.0, fired.append)
    for delay in (5.0, 15.0, 25.0, 34.0):
        sim.schedule(delay, lambda: None)
    sim.run()
    # Ticks fire as events carry the clock across multiples of the width;
    # the hook never schedules anything itself.
    assert fired == [10.0, 20.0, 30.0]
    assert sim.events_processed == 4


def test_tick_hook_clear_and_replace():
    sim = Simulator(seed=1)
    first, second = [], []
    sim.set_tick_hook(10.0, first.append)
    sim.schedule(12.0, lambda: None)
    sim.run()
    assert first == [10.0]
    sim.set_tick_hook(10.0, second.append)  # replace: one hook at a time
    sim.schedule(3.0, lambda: None)  # t=15: still inside the 10..20 bucket
    sim.run()
    assert first == [10.0] and second == []  # no boundary crossed yet
    sim.clear_tick_hook()
    sim.schedule(40.0, lambda: None)  # t=55: would cross 20, 30, 40, 50
    sim.run()
    assert second == []  # cleared hook never fires


def test_tick_hook_rejects_nonpositive_width():
    sim = Simulator(seed=1)
    with pytest.raises(SimulationError):
        sim.set_tick_hook(0.0, lambda b: None)
    with pytest.raises(SimulationError):
        sim.set_tick_hook(-1.0, lambda b: None)
