"""Crash-window sweep around the 2PC decision (eager primary copy).

The nastiest region of the protocol: the primary may die before sending
any PREPARE, between votes and decision, after telling *some* secondaries
to commit, or after answering the client.  Cooperative termination
(in-doubt participants consult their peers) must keep the survivors
mutually consistent in every window, and the client-visible outcome must
agree with the surviving state: if the client saw "committed", the data
must be there; if the client retried, the increment must not double.
"""

import pytest

from repro import Operation, ReplicatedSystem

# Fine-grained crash offsets after the update request is submitted at
# t=20: they straddle request arrival (+1), per-op propagation, prepare
# (+2), votes (+3), decision send (+4) and the client response (+5).
OFFSETS = [0.5, 1.5, 2.2, 2.8, 3.4, 4.2, 4.8, 5.5, 7.0]


def run_window(offset, protocol="eager_primary", seed=3):
    system = ReplicatedSystem(
        protocol, replicas=3, seed=seed,
        fd_interval=1.0, fd_timeout=4.0, client_timeout=30.0,
    )
    system.injector.crash_at(20.0 + offset, "r0")

    def client():
        yield system.sim.timeout(20.0)
        result = yield system.client(0).submit([Operation.update("x", "add", 1)])
        retries = 0
        while not result.committed and retries < 6:
            retries += 1
            yield system.sim.timeout(5.0)
            result = yield system.client(0).submit(
                [Operation.update("x", "add", 1)]
            )
        return result

    handle = system.sim.spawn(client())
    result = system.sim.run_until_done(handle)
    system.settle(600)
    return system, result


class TestDecisionWindows:
    @pytest.mark.parametrize("offset", OFFSETS)
    def test_survivors_agree_and_match_client_outcome(self, offset):
        system, result = run_window(offset)
        survivors = system.live_replicas()
        values = {system.store_of(n).read("x") or 0 for n in survivors}
        assert len(values) == 1, (
            f"offset {offset}: survivors diverge: "
            f"{ {n: system.store_of(n).read('x') for n in survivors} }"
        )
        value = values.pop()
        if result.committed:
            assert value == 1, (
                f"offset {offset}: client saw commit but x={value} "
                "(lost or doubled)"
            )
        else:
            assert value in (0, 1), f"offset {offset}: x={value}"

    @pytest.mark.parametrize("offset", OFFSETS)
    def test_no_secondary_left_in_doubt(self, offset):
        system, result = run_window(offset)
        for name in system.live_replicas():
            participant = system.protocol_at(name).participant
            assert not participant.in_doubt, (
                f"offset {offset}: {name} still blocked on "
                f"{list(participant.in_doubt)}"
            )

    def test_sweep_covers_both_outcome_kinds(self):
        # Sanity: across the sweep, some windows force a retry and some
        # commit cleanly on the first attempt; otherwise the offsets are
        # not actually straddling the protocol.
        retried, clean = 0, 0
        for offset in OFFSETS:
            _system, result = run_window(offset)
            if result.retries > 0:
                retried += 1
            else:
                clean += 1
        assert retried > 0 and clean > 0, (retried, clean)
