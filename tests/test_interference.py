"""Dynamic twin of the static interference pass (repro.lint R6xx).

The generated interference catalog (``docs/interference.md`` + JSON)
claims, per dispatchable handler, the replica-state attributes it can
read and write and the atomicity windows its blocking waits open.  This
module holds the artifact to that claim in the directions the linter
cannot check on its own:

* **freshness** — the committed files equal what the pass regenerates
  from today's sources (the test-suite mirror of ``make
  interference-check``), byte for byte, and a second independent rebuild
  produces identical bytes (determinism);
* **coverage** — every registered technique appears with a
  ``client.request`` entry, and the per-class write sets span the whole
  protocol registry;
* **soundness** — seeded chaos campaigns of all ten techniques run with
  attribute-write tracking swapped onto every protocol instance
  (:func:`repro.obs.track_attr_writes`); every ``self.attr = ...`` the
  runtime actually performs must be one the static analysis predicted
  (observed ⊆ static).  A runtime write the pass failed to see would
  show up here as an unpredicted attribute.
"""

import json
import os
from pathlib import Path

import pytest

from repro import Operation, ReplicatedSystem
from repro.core.protocols import REGISTRY
from repro.lint.engine import collect_files, parse_file
from repro.lint.interference import (
    INTERFERENCE_HEADER,
    build_interference_artifact,
    render_interference_json,
    render_interference_markdown,
)
from repro.obs import track_attr_writes, untrack_attr_writes

REPO = Path(__file__).resolve().parent.parent
MARKDOWN = REPO / "docs" / "interference.md"
JSON_PATH = REPO / "docs" / "interference.json"


def _contexts():
    contexts = []
    for path in collect_files(["src/repro"]):
        context, error = parse_file(path)
        assert error is None, f"unparseable source: {error}"
        contexts.append(context)
    return contexts


def _build():
    cwd = os.getcwd()
    os.chdir(REPO)
    try:
        return build_interference_artifact(_contexts())
    finally:
        os.chdir(cwd)


@pytest.fixture(scope="module")
def artifact():
    return _build()


# ---------------------------------------------------------------------------
# Freshness and determinism
# ---------------------------------------------------------------------------

def test_committed_catalog_is_fresh(artifact):
    assert MARKDOWN.read_text() == render_interference_markdown(artifact), (
        "docs/interference.md is stale — run `make interference`"
    )
    assert JSON_PATH.read_text() == render_interference_json(artifact), (
        "docs/interference.json is stale — run `make interference`"
    )


def test_generated_header_is_present():
    content = MARKDOWN.read_text()
    assert INTERFERENCE_HEADER in content
    assert "Do not edit by hand" in INTERFERENCE_HEADER


def test_rebuild_is_byte_deterministic(artifact):
    again = _build()
    assert render_interference_markdown(again) == \
        render_interference_markdown(artifact)
    assert render_interference_json(again) == render_interference_json(artifact)


# ---------------------------------------------------------------------------
# Coverage
# ---------------------------------------------------------------------------

def test_every_registered_technique_is_catalogued(artifact):
    assert {t["technique"] for t in artifact["techniques"]} == set(REGISTRY)
    for technique in artifact["techniques"]:
        triggers = {h["trigger"] for h in technique["handlers"]}
        assert "client.request" in triggers, (
            f"{technique['technique']} has no client.request entry"
        )


def test_class_write_sets_span_the_registry(artifact):
    assert set(artifact["classes"]) == {
        cls.__name__ for cls in REGISTRY.values()
    }
    for name, attrs in artifact["classes"].items():
        assert attrs == sorted(attrs), name
        assert len(attrs) == len(set(attrs)), name


def test_summary_counts_are_consistent(artifact):
    handlers = [
        h for t in artifact["techniques"] for h in t["handlers"]
    ]
    assert artifact["summary"]["handlers"] == len(handlers)
    assert artifact["summary"]["windows"] == sum(
        len(h["windows"]) for h in handlers
    )
    assert artifact["summary"]["write_attributes"] == len({
        attr for attrs in artifact["classes"].values() for attr in attrs
    })


# ---------------------------------------------------------------------------
# Dynamic cross-validation: observed writes ⊆ static write sets
# ---------------------------------------------------------------------------

def _run_tracked_campaign(protocol, seed=7, requests=4):
    """A small crash-and-recover campaign with attr tracking installed."""
    system = ReplicatedSystem(
        protocol, replicas=3, clients=2, seed=seed, observe=True,
        fd_interval=2.0, fd_timeout=8.0, client_timeout=40.0,
    )
    tracked = []
    for name in system.replica_names:
        instance = system.replicas[name].protocol
        tracked.append(track_attr_writes(instance, system.observer))
    system.injector.crash_at(60.0, "r2")
    system.injector.recover_at(200.0, "r2")

    def client_loop(index):
        for _ in range(requests):
            result = yield system.client(index).submit(
                [Operation.update("x", "add", 1)]
            )
            attempts = 0
            while not result.committed and attempts < 5:
                attempts += 1
                yield system.sim.timeout(10.0)
                result = yield system.client(index).submit(
                    [Operation.update("x", "add", 1)]
                )
            yield system.sim.timeout(15.0)

    handles = [system.sim.spawn(client_loop(i)) for i in range(2)]
    system.sim.run_until_done(system.sim.all_of(handles))
    system.settle(400)
    for instance in tracked:
        untrack_attr_writes(instance)
    return system


@pytest.mark.parametrize("protocol", sorted(REGISTRY))
def test_observed_writes_are_subset_of_static(protocol):
    # Many techniques only mutate containers at runtime (``self.x[k] =``
    # goes through ``__getattribute__``, not ``__setattr__``), so an
    # empty observation is fine; what may never happen is a recorded
    # rebind the static analysis did not predict.
    static = json.loads(JSON_PATH.read_text())["classes"]
    system = _run_tracked_campaign(protocol)
    observed = system.observer.attr_writes
    class_name = REGISTRY[protocol].__name__
    for label, attrs in observed.items():
        assert label == class_name
        unpredicted = attrs - set(static[label])
        assert not unpredicted, (
            f"{protocol}: runtime wrote {sorted(unpredicted)} on {label}, "
            f"absent from the static R6xx write set — regenerate "
            f"docs/interference.json or fix the analysis"
        )


def test_tracking_mechanism_observes_runtime_writes():
    # Proof the dynamic side is live, not vacuous: semi-passive rebinds
    # its rotating-coordinator slot bookkeeping on every request, so a
    # campaign must record those attribute writes.
    system = _run_tracked_campaign("semi_passive")
    observed = system.observer.attr_writes.get("SemiPassiveReplication")
    assert observed, "campaign recorded no attribute writes at all"
    assert "_slot" in observed
