"""Unit tests for the write-ahead log."""

from repro.db import TransactionUpdates, UpdateRecord, WriteAheadLog


def updates(txn_id, *pairs):
    return TransactionUpdates(
        txn_id, tuple(UpdateRecord(item, value, 1) for item, value in pairs)
    )


class TestWriteAheadLog:
    def test_append_assigns_sequential_lsns(self):
        wal = WriteAheadLog("site")
        assert wal.append(updates("t1", ("x", 1))) == 0
        assert wal.append(updates("t2", ("y", 2))) == 1
        assert len(wal) == 2

    def test_entries_carry_their_lsn(self):
        wal = WriteAheadLog()
        wal.append(updates("t1", ("x", 1)))
        assert wal.entry(0).commit_lsn == 0
        assert wal.entry(0).txn_id == "t1"

    def test_tail_returns_suffix(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.append(updates(f"t{i}", ("x", i)))
        tail = wal.tail(3)
        assert [entry.txn_id for entry in tail] == ["t3", "t4"]
        assert wal.tail(5) == []

    def test_last_lsn_empty_is_minus_one(self):
        wal = WriteAheadLog()
        assert wal.last_lsn() == -1
        wal.append(updates("t1", ("x", 1)))
        assert wal.last_lsn() == 0

    def test_iteration_in_commit_order(self):
        wal = WriteAheadLog()
        for i in range(3):
            wal.append(updates(f"t{i}", ("x", i)))
        assert [entry.txn_id for entry in wal] == ["t0", "t1", "t2"]

    def test_record_order_preserved_within_entry(self):
        wal = WriteAheadLog()
        wal.append(updates("t1", ("b", 1), ("a", 2), ("c", 3)))
        assert [record.item for record in wal.entry(0).records] == ["b", "a", "c"]

    def test_wire_roundtrip_preserves_lsn(self):
        wal = WriteAheadLog()
        wal.append(updates("t1", ("x", 1)))
        entry = wal.entry(0)
        assert TransactionUpdates.from_wire(entry.as_wire()) == entry
