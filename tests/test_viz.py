"""Tests for the figure-rendering helpers."""

from repro import Operation, ReplicatedSystem
from repro.core.classification import render_matrix, render_synthetic_view
from repro.sim import Simulator, TraceLog
from repro.core.phases import AC, END, EX, RE, SC, PhaseTracer
from repro.viz import render_figure, render_phase_timeline


def make_trace():
    sim = Simulator()
    trace = TraceLog(sim)
    tracer = PhaseTracer(trace)
    times = [0.0, 1.0, 2.0, 3.0, 4.0]
    for time, phase in zip(times, (RE, SC, EX, AC, END)):
        sim.schedule_at(time, tracer.record, "r0", "req", phase, "mech")
    sim.schedule_at(1.0, tracer.record, "r1", "req", SC)
    sim.run()
    return trace


class TestTimeline:
    def test_all_lanes_present(self):
        rendering = render_phase_timeline(make_trace(), "req", ["r0", "r1"])
        lines = rendering.splitlines()
        assert any(line.startswith("r0") for line in lines)
        assert any(line.startswith("r1") for line in lines)

    def test_phases_appear_in_time_order(self):
        rendering = render_phase_timeline(make_trace(), "req", ["r0"])
        row = next(line for line in rendering.splitlines() if line.startswith("r0"))
        positions = [row.index(phase) for phase in (RE, SC, EX, AC, END)]
        assert positions == sorted(positions)

    def test_simultaneous_events_do_not_overlap(self):
        sim = Simulator()
        trace = TraceLog(sim)
        tracer = PhaseTracer(trace)
        tracer.record("r0", "req", RE)
        tracer.record("r0", "req", SC)  # same instant
        rendering = render_phase_timeline(trace, "req", ["r0"])
        row = next(line for line in rendering.splitlines() if line.startswith("r0"))
        assert "RE" in row and "SC" in row

    def test_unknown_request_reports_gracefully(self):
        rendering = render_phase_timeline(make_trace(), "ghost", ["r0"])
        assert "no phase events" in rendering

    def test_mechanism_legend_included(self):
        rendering = render_phase_timeline(make_trace(), "req", ["r0"])
        assert "mech" in rendering

    def test_render_figure_composes_parts(self):
        block = render_figure("Title", "RE -> EX", "timeline-body", notes=["a note"])
        assert "Title" in block
        assert "declared: RE -> EX" in block
        assert "timeline-body" in block
        assert "a note" in block

    def test_end_to_end_from_live_system(self):
        system = ReplicatedSystem("passive", replicas=3, seed=1)
        result = system.execute([Operation.write("x", 1)])
        system.settle(100)
        rendering = render_phase_timeline(
            system.trace, result.request_id, system.replica_names
        )
        assert "RE" in rendering and "END" in rendering


class TestMatrixRendering:
    def test_matrix_cells_and_labels(self):
        rendered = render_matrix(
            {("a", "x"): ["p1", "p2"], ("b", "y"): ["p3"]},
            row_labels={"a": "row-a", "b": "row-b"},
            column_labels={"x": "col-x", "y": "col-y"},
        )
        assert "row-a" in rendered and "col-y" in rendered
        assert "p1, p2" in rendered
        assert "-" in rendered  # empty cells dashed

    def test_synthetic_view_lists_every_technique(self):
        rendered = render_synthetic_view()
        for fragment in ("Active replication", "Lazy update everywhere",
                         "Certification-based replication"):
            assert fragment in rendered
        assert "weak consistency" in rendered and "strong consistency" in rendered
