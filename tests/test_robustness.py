"""Extra robustness: consensus at scale, network invariants, DS multi-op."""

import pytest
from helpers import GroupHarness
from hypothesis import given, settings, strategies as st

from repro import Operation, ReplicatedSystem
from repro.analysis import counter_check
from repro.groupcomm import Consensus
from repro.net import ConstantLatency, Network, Node, UniformLatency
from repro.sim import Simulator


def attach_consensus(h):
    decisions = {name: {} for name in h.names}
    endpoints = {}
    for name in h.names:
        def on_decide(instance, value, n=name):
            decisions[n][instance] = value
        endpoints[name] = Consensus(
            h.nodes[name], h.transports[name], h.names, h.detectors[name], on_decide
        )
    return endpoints, decisions


class TestConsensusAtScale:
    def test_seven_nodes_two_crashes_many_instances(self):
        h = GroupHarness(7, fd_interval=2.0, fd_timeout=6.0, seed=3)
        cons, decisions = attach_consensus(h)
        for inst in range(5):
            for i, name in enumerate(h.names):
                cons[name].propose(inst, f"v{inst}-{i}")
        h.sim.schedule(0.5, h.nodes["n0"].crash)
        h.sim.schedule(5.0, h.nodes["n1"].crash)
        h.run(until=8000)
        survivors = h.names[2:]
        for inst in range(5):
            decided = {decisions[n].get(inst) for n in survivors}
            assert len(decided) == 1 and None not in decided, (inst, decided)

    def test_interleaved_proposals_under_jitter(self):
        h = GroupHarness(5, jitter=True, seed=8)
        cons, decisions = attach_consensus(h)
        # Stagger proposals so instances start while others are mid-round.
        for inst in range(4):
            for i, name in enumerate(h.names):
                h.sim.schedule(
                    inst * 2.0 + i * 0.7,
                    lambda c=cons[name], inst=inst, v=f"{inst}:{i}": c.propose(inst, v),
                )
        h.run(until=4000)
        for inst in range(4):
            decided = {decisions[n].get(inst) for n in h.names}
            assert len(decided) == 1 and None not in decided

    def test_validity_decided_value_was_proposed(self):
        h = GroupHarness(5, seed=1)
        cons, decisions = attach_consensus(h)
        proposed = set()
        for i, name in enumerate(h.names):
            value = f"value-{i}"
            proposed.add(value)
            cons[name].propose("v", value)
        h.run(until=1000)
        for name in h.names:
            assert decisions[name]["v"] in proposed


class TestNetworkProperties:
    @given(
        sends=st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=25),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_fifo_per_link_under_random_traffic(self, sends, seed):
        sim = Simulator(seed=seed)
        net = Network(sim, latency=UniformLatency(0.1, 5.0), fifo=True)
        received = {"a": [], "b": []}
        nodes = {}
        for name in ("a", "b", "sink"):
            nodes[name] = Node(sim, net, name)
        nodes["sink"].on("m", lambda msg: received[msg.src].append(msg["seq"]))
        counters = {"a": 0, "b": 0}
        for sender in sends:
            nodes[sender].send("sink", "m", seq=counters[sender])
            counters[sender] += 1
        sim.run()
        for sender in ("a", "b"):
            assert received[sender] == sorted(received[sender])

    @given(seed=st.integers(0, 60))
    @settings(max_examples=30, deadline=None)
    def test_fault_plane_conservation(self, seed):
        """With drop/duplicate/jitter faults armed, the envelope ledger
        still balances: every envelope that enters the fabric leaves it
        exactly once, and fault duplicates are extra envelopes on the
        right-hand side."""
        sim = Simulator(seed=seed)
        net = Network(sim, latency=ConstantLatency(1.0))
        got = []
        a = Node(sim, net, "a")
        b = Node(sim, net, "b")
        b.on("m", lambda msg: got.append(msg["i"]))
        net.set_fault("b", "drop", 0.3)
        net.set_fault("a", "duplicate", 0.4)
        net.set_fault("b", "jitter", 3.0)
        for i in range(20):
            sim.schedule_at(float(i), lambda i=i: a.send("b", "m", i=i))
        sim.run()
        stats = net.stats
        assert stats.delivered == len(got)
        assert (
            stats.delivered + stats.dropped_loss + stats.dropped_partition
            + stats.dropped_crash + stats.dropped_fault
            == stats.sent + stats.duplicated
        )

    @given(seed=st.integers(0, 60))
    @settings(max_examples=30, deadline=None)
    def test_partition_heal_conservation(self, seed):
        """No message is duplicated; every message is delivered, dropped
        by partition, or lost to configured loss — the counters add up."""
        sim = Simulator(seed=seed)
        net = Network(sim, latency=ConstantLatency(1.0), loss_rate=0.2)
        got = []
        a = Node(sim, net, "a")
        b = Node(sim, net, "b")
        b.on("m", lambda msg: got.append(msg["i"]))
        for i in range(10):
            sim.schedule_at(float(i), lambda i=i: a.send("b", "m", i=i))
        sim.schedule_at(3.5, net.partition, ["a"], ["b"])
        sim.schedule_at(7.5, net.heal)
        sim.run()
        stats = net.stats
        assert stats.delivered == len(got)
        assert len(got) == len(set(got)), "duplicates"
        assert (
            stats.delivered + stats.dropped_loss + stats.dropped_partition
            == stats.sent
        )


class TestIdempotentFailover:
    def test_same_key_retried_across_primary_failover_no_double_apply(self):
        """Crash the primary mid-run: the resilient edge retries the SAME
        idempotency key against the promoted primary.  The duplicate-reply
        cache (replicated with the decision) must make the retry
        exactly-once — the counter ends exact, never double-applied."""
        from repro.resilience import ResilientClient

        system = ReplicatedSystem(
            "eager_primary", replicas=3, clients=0, seed=0,
            fd_interval=2.0, fd_timeout=8.0,
        )
        edges = [
            ResilientClient(system, index=i, request_timeout=30.0, deadline=400.0)
            for i in range(2)
        ]
        system.injector.crash_at(32.0, "r0")
        system.injector.recover_at(150.0, "r0")
        results = []

        def load(edge):
            for _ in range(4):
                results.append(
                    (yield edge.submit(Operation.update("x", "add", 1)))
                )
                yield system.sim.timeout(12.0)

        handles = [system.sim.spawn(load(edge)) for edge in edges]
        system.sim.run_until_done(system.sim.all_of(handles))
        system.settle(600)
        committed = [r for r in results if r.committed]
        assert len(committed) == 8, [r.reason for r in results]
        assert any(r.retries > 0 for r in results), (
            "the failover must actually force a same-key retry"
        )
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        assert not counter_check(committed, stores, strict=False)
        assert system.converged(), system.divergent_replicas()


class TestDSMultiOperationRequests:
    """Multi-operation requests through the DS techniques: the whole
    request is one atomic state-machine command (all ops or none,
    identical everywhere)."""

    @pytest.mark.parametrize("protocol", ["active", "semi_active", "semi_passive"])
    def test_multi_op_atomic_everywhere(self, protocol):
        system = ReplicatedSystem(protocol, replicas=3, seed=5,
                                  config={"abcast": "sequencer"})
        result = system.execute([
            Operation.update("a", "add", -10),
            Operation.update("b", "add", 10),
            Operation.read("a"),
        ])
        assert result.committed
        assert result.values[-1] == -10, "read inside the command sees the write"
        system.settle(300)
        for name in system.replica_names:
            assert system.store_of(name).read("a") == -10
            assert system.store_of(name).read("b") == 10
        assert system.converged()

    def test_passive_multi_op_with_nondeterminism(self):
        system = ReplicatedSystem("passive", replicas=3, seed=6)
        result = system.execute([
            Operation.update("token", "random_token"),
            Operation.update("count", "add", 1),
        ])
        assert result.committed
        system.settle(200)
        tokens = {system.store_of(n).read("token") for n in system.replica_names}
        counts = {system.store_of(n).read("count") for n in system.replica_names}
        assert len(tokens) == 1 and counts == {1}
