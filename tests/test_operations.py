"""Unit tests for operations, requests and results."""

import random

import pytest

from repro.core.operations import (
    NON_DETERMINISTIC,
    Operation,
    Request,
    Result,
    UPDATE_FUNCTIONS,
    apply_update,
)


class TestOperation:
    def test_constructors(self):
        read = Operation.read("x")
        write = Operation.write("x", 5)
        update = Operation.update("x", "add", 3)
        assert read.kind == "read" and not read.is_write
        assert write.kind == "write" and write.is_write
        assert update.kind == "update" and update.func == "add"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Operation("delete", "x")

    def test_unknown_update_function_rejected(self):
        with pytest.raises(ValueError):
            Operation.update("x", "frobnicate")

    def test_determinism_flag(self):
        assert Operation.update("x", "add", 1).deterministic
        assert not Operation.update("x", "random_token").deterministic
        assert Operation.read("x").deterministic

    def test_wire_roundtrip(self):
        op = Operation.update("item", "append", "tail")
        assert Operation.from_wire(op.as_wire()) == op


class TestUpdateFunctions:
    def test_set(self):
        assert apply_update("set", "old", "new", random.Random(0)) == "new"

    def test_add_treats_none_as_zero(self):
        assert apply_update("add", None, 5, random.Random(0)) == 5
        assert apply_update("add", 10, -3, random.Random(0)) == 7

    def test_append(self):
        assert apply_update("append", None, "a", random.Random(0)) == ["a"]
        assert apply_update("append", ["a"], "b", random.Random(0)) == ["a", "b"]

    def test_random_token_draws_from_given_rng(self):
        a = apply_update("random_token", None, None, random.Random(1))
        b = apply_update("random_token", None, None, random.Random(1))
        c = apply_update("random_token", None, None, random.Random(2))
        assert a == b and a != c

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            apply_update("bogus", 1, 2, random.Random(0))

    def test_nondeterministic_registry_subset(self):
        assert NON_DETERMINISTIC <= set(UPDATE_FUNCTIONS)


class TestRequest:
    def test_make_wraps_single_operation(self):
        request = Request.make(Operation.read("x"))
        assert len(request.operations) == 1

    def test_request_ids_unique(self):
        ids = {Request.make(Operation.read("x")).request_id for _ in range(20)}
        assert len(ids) == 20

    def test_read_only_and_deterministic_flags(self):
        assert Request.make([Operation.read("x")]).read_only
        assert not Request.make([Operation.write("x", 1)]).read_only
        assert not Request.make([Operation.update("x", "random_token")]).deterministic

    def test_wire_roundtrip(self):
        request = Request.make([Operation.read("x"), Operation.write("y", 2)])
        assert Request.from_wire(request.as_wire()) == request


class TestResult:
    def test_latency_and_value(self):
        result = Result("r1", True, values=[None, 7],
                        submitted_at=2.0, completed_at=5.5)
        assert result.latency == 3.5
        assert result.value == 7

    def test_value_empty_when_no_values(self):
        assert Result("r1", True).value is None

    def test_repr_mentions_verdict(self):
        assert "committed" in repr(Result("r1", True))
        assert "aborted" in repr(Result("r1", False, reason="x"))
