"""The paper's cross-community equivalence claims, tested.

Section 4.3: "eager primary copy replication is functionally equivalent
to passive replication with VSCAST.  The only differences are internal to
the Agreement Coordination phase (2PC ... and VSCAST ...)".

Section 4.4.1/4.4.2: semi-active replication and eager update everywhere
with distributed locking are "conceptually similar"; active replication
and eager update everywhere with ABCAST differ only in the client
interaction.

These tests pin the claims down mechanically: equivalent pairs share the
same phase rows (up to the AC mechanism), the same client-visible
outcomes on identical workloads, and the same placement in the
classifications.
"""

import pytest

from repro import AC, END, EX, RE, SC, Operation, ReplicatedSystem
from repro.core.protocols import REGISTRY


def outcomes(protocol, seed=77, config=None):
    system = ReplicatedSystem(protocol, replicas=3, seed=seed, config=config)
    trace = []
    for i in range(4):
        result = system.execute([Operation.update(f"k{i % 2}", "add", 1)])
        trace.append((result.committed, tuple(result.values)))
    system.settle(400)
    state = system.store_of("r1").values_digest()
    return trace, state


class TestPassiveVsEagerPrimary:
    def test_same_phase_row(self):
        passive = REGISTRY["passive"].info.descriptor.phase_names()
        eager = REGISTRY["eager_primary"].info.descriptor.phase_names()
        assert passive == eager == [RE, EX, AC, END]

    def test_only_ac_mechanism_differs(self):
        passive_steps = {s.phase: s.mechanism for s in
                         REGISTRY["passive"].info.descriptor.steps if s.mechanism}
        eager_steps = {s.phase: s.mechanism for s in
                       REGISTRY["eager_primary"].info.descriptor.steps if s.mechanism}
        assert passive_steps == {AC: "vscast"}
        assert eager_steps == {AC: "2pc"}

    def test_same_client_visible_outcomes(self):
        passive_trace, passive_state = outcomes("passive")
        eager_trace, eager_state = outcomes("eager_primary")
        assert passive_trace == eager_trace
        assert passive_state == eager_state

    def test_both_are_primary_executes_backups_apply(self):
        for name in ("passive", "eager_primary"):
            system = ReplicatedSystem(name, replicas=3, seed=1)
            result = system.execute([Operation.update("x", "random_token")])
            assert result.committed
            system.settle(200)
            values = {system.store_of(n).read("x") for n in system.replica_names}
            assert len(values) == 1, f"{name}: backups must apply, not execute"


class TestActiveVsEagerUEAbcast:
    def test_same_phase_row_no_ac(self):
        active = REGISTRY["active"].info.descriptor.phase_names()
        abcast = REGISTRY["eager_ue_abcast"].info.descriptor.phase_names()
        assert active == abcast == [RE, SC, EX, END]
        assert not REGISTRY["active"].info.descriptor.uses(AC)
        assert not REGISTRY["eager_ue_abcast"].info.descriptor.uses(AC)

    def test_difference_is_the_client_interaction(self):
        # "the client submits its request to one database server ...
        # (note that in distributed systems, the client broadcasts the
        # request directly to all servers)"
        assert REGISTRY["active"].info.client_policy == "all"
        assert REGISTRY["eager_ue_abcast"].info.client_policy == "local"

    def test_same_replica_state_on_same_workload(self):
        _trace_a, state_a = outcomes("active", config={"abcast": "sequencer"})
        _trace_b, state_b = outcomes("eager_ue_abcast", config={"abcast": "sequencer"})
        assert state_a == state_b

    def test_both_require_determinism(self):
        assert REGISTRY["active"].info.requires_determinism
        assert REGISTRY["eager_ue_abcast"].info.requires_determinism


class TestSemiActiveVsEagerUELocking:
    def test_same_phase_row(self):
        semi = REGISTRY["semi_active"].info.descriptor.phase_names()
        locking = REGISTRY["eager_ue_locking"].info.descriptor.phase_names()
        assert semi == locking == [RE, SC, EX, AC, END]

    def test_mechanisms_differ_as_the_paper_maps_them(self):
        # "Server Coordination takes place using 2 Phase Locking while in
        # distributed systems this is achieved using ABCAST.  The 2 Phase
        # Commit ... corresponds to the use of a VSCAST mechanism."
        semi = {s.phase: s.mechanism for s in
                REGISTRY["semi_active"].info.descriptor.steps if s.mechanism}
        locking = {s.phase: s.mechanism for s in
                   REGISTRY["eager_ue_locking"].info.descriptor.steps if s.mechanism}
        assert semi == {RE: "abcast", SC: "abcast", AC: "vscast"}
        assert locking == {SC: "locks", AC: "2pc"}


class TestLazinessIsThePhaseSwap:
    @pytest.mark.parametrize("eager,lazy", [
        ("eager_primary", "lazy_primary"),
    ])
    def test_lazy_is_eager_with_end_and_ac_swapped(self, eager, lazy):
        eager_row = REGISTRY[eager].info.descriptor.phase_names()
        lazy_row = REGISTRY[lazy].info.descriptor.phase_names()
        assert eager_row == [RE, EX, AC, END]
        assert lazy_row == [RE, EX, END, AC]
        swapped = list(eager_row)
        i, j = swapped.index(AC), swapped.index(END)
        swapped[i], swapped[j] = swapped[j], swapped[i]
        assert swapped == lazy_row
