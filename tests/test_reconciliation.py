"""Tests for lazy-replication reconciliation policies."""

from hypothesis import given, settings, strategies as st

from repro.db import DataStore, LastWriterWins, SitePriority, Stamp


class TestLastWriterWins:
    def test_first_write_applies(self):
        store = DataStore()
        lww = LastWriterWins(store)
        assert lww.consider("x", 1, Stamp(10.0, "s1", "t1"))
        assert store.read("x") == 1

    def test_newer_stamp_overwrites(self):
        store = DataStore()
        lww = LastWriterWins(store)
        lww.consider("x", "old", Stamp(10.0, "s1", "t1"))
        assert lww.consider("x", "new", Stamp(20.0, "s2", "t2"))
        assert store.read("x") == "new"
        assert "t1" in lww.overwritten_txns

    def test_older_stamp_discarded(self):
        store = DataStore()
        lww = LastWriterWins(store)
        lww.consider("x", "new", Stamp(20.0, "s2", "t2"))
        assert not lww.consider("x", "old", Stamp(10.0, "s1", "t1"))
        assert store.read("x") == "new"
        assert lww.discarded == 1
        assert "t1" in lww.overwritten_txns

    def test_equal_time_breaks_by_site_name(self):
        store = DataStore()
        lww = LastWriterWins(store)
        lww.consider("x", "from-a", Stamp(10.0, "a", "t1"))
        assert lww.consider("x", "from-b", Stamp(10.0, "b", "t2"))
        assert store.read("x") == "from-b"

    def test_items_independent(self):
        store = DataStore()
        lww = LastWriterWins(store)
        lww.consider("x", 1, Stamp(10.0, "s1"))
        lww.consider("y", 2, Stamp(5.0, "s2"))
        assert store.read("x") == 1 and store.read("y") == 2

    def test_stamp_wire_roundtrip(self):
        stamp = Stamp(3.5, "site", "txn-9", seq=2)
        roundtripped = Stamp.from_wire(stamp.as_wire())
        assert roundtripped == stamp
        assert roundtripped.txn_id == "txn-9"

    def test_seq_breaks_same_time_same_site_ties(self):
        store = DataStore()
        lww = LastWriterWins(store)
        lww.consider("x", "first", Stamp(1.0, "s1", "t1", seq=1))
        assert lww.consider("x", "second", Stamp(1.0, "s1", "t2", seq=2))
        assert store.read("x") == "second"

    @given(
        st.lists(
            st.tuples(
                st.sampled_from("xy"),
                st.integers(),
                st.floats(0, 100, allow_nan=False),
                st.sampled_from(["s1", "s2", "s3"]),
            ),
            min_size=1,
            max_size=20,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_convergence_under_any_arrival_order(self, writes, rnd):
        """LWW applied to any permutation of the same writes converges."""
        stamped = [
            (item, value, Stamp(time, site, f"t{i}", seq=i))
            for i, (item, value, time, site) in enumerate(writes)
        ]
        stores = []
        for _ in range(3):
            permuted = list(stamped)
            rnd.shuffle(permuted)
            store = DataStore()
            lww = LastWriterWins(store)
            for item, value, stamp in permuted:
                lww.consider(item, value, stamp)
            stores.append(store)
        assert stores[0].values_digest() == stores[1].values_digest()
        assert stores[1].values_digest() == stores[2].values_digest()


class TestSitePriority:
    def test_priority_site_beats_newer_write(self):
        store = DataStore()
        rec = SitePriority(store, {"primary": 10, "edge": 1})
        rec.consider("x", "late-edge", Stamp(100.0, "edge", "t2"))
        assert rec.consider("x", "early-primary", Stamp(1.0, "primary", "t1"))
        assert store.read("x") == "early-primary"

    def test_same_priority_falls_back_to_time(self):
        store = DataStore()
        rec = SitePriority(store, {"a": 5, "b": 5})
        rec.consider("x", "older", Stamp(1.0, "a", "t1"))
        assert rec.consider("x", "newer", Stamp(2.0, "b", "t2"))
        assert store.read("x") == "newer"

    def test_unknown_site_rank_zero(self):
        store = DataStore()
        rec = SitePriority(store, {"primary": 1})
        rec.consider("x", "anon", Stamp(50.0, "stranger", "t1"))
        assert rec.consider("x", "prim", Stamp(1.0, "primary", "t2"))
        assert store.read("x") == "prim"
