"""Dedicated tests for the heartbeat failure detector."""

import pytest

from repro.failures import FailureDetector, FailureInjector
from repro.net import ConstantLatency, Network, Node, UniformLatency
from repro.sim import Simulator


def build(n=3, seed=1, interval=2.0, timeout=8.0, adaptive=True, jitter=False):
    sim = Simulator(seed=seed)
    latency = UniformLatency(0.5, 3.0) if jitter else ConstantLatency(1.0)
    net = Network(sim, latency=latency)
    names = [f"n{i}" for i in range(n)]
    nodes = {name: Node(sim, net, name) for name in names}
    detectors = {
        name: FailureDetector(nodes[name], names, interval=interval,
                              timeout=timeout, adaptive=adaptive)
        for name in names
    }
    return sim, net, nodes, detectors


class TestDetection:
    def test_no_suspicions_while_everyone_lives(self):
        sim, net, nodes, detectors = build()
        sim.run(until=200)
        for detector in detectors.values():
            assert not detector.suspected

    def test_crashed_node_eventually_suspected_by_all(self):
        sim, net, nodes, detectors = build()
        sim.schedule(50.0, nodes["n1"].crash)
        sim.run(until=100)
        for name in ("n0", "n2"):
            assert detectors[name].is_suspected("n1")

    def test_detection_latency_bounded_by_timeout_plus_interval(self):
        sim, net, nodes, detectors = build(interval=2.0, timeout=8.0)
        suspected_at = {}
        detectors["n0"].on_suspect(lambda p: suspected_at.setdefault(p, sim.now))
        sim.schedule(50.0, nodes["n1"].crash)
        sim.run(until=200)
        assert "n1" in suspected_at
        assert 50.0 < suspected_at["n1"] <= 50.0 + 8.0 + 2.0 * 2 + 2.0

    def test_own_node_never_suspected(self):
        sim, net, nodes, detectors = build()
        sim.run(until=100)
        assert "n0" not in detectors["n0"].suspected

    def test_listeners_fire_once_per_transition(self):
        sim, net, nodes, detectors = build()
        events = []
        detectors["n0"].on_suspect(lambda p: events.append(("suspect", p, sim.now)))
        sim.schedule(30.0, nodes["n2"].crash)
        sim.run(until=300)
        assert events.count(("suspect", "n2", events[0][2])) == 1
        assert len([e for e in events if e[1] == "n2"]) == 1


class TestWrongSuspicionsAndRecovery:
    def test_partition_causes_wrong_suspicion_then_restore(self):
        sim, net, nodes, detectors = build()
        restores = []
        detectors["n0"].on_restore(lambda p: restores.append((p, sim.now)))
        net.partition(["n0"], ["n1", "n2"])
        sim.run(until=60)
        assert detectors["n0"].is_suspected("n1")
        net.heal()
        sim.run(until=120)
        assert not detectors["n0"].is_suspected("n1")
        assert any(p == "n1" for p, _t in restores)
        assert detectors["n0"].wrong_suspicions >= 1

    def test_adaptive_timeout_grows_after_wrong_suspicion(self):
        sim, net, nodes, detectors = build(adaptive=True)
        before = detectors["n0"]._timeouts["n1"]
        net.partition(["n0"], ["n1", "n2"])
        sim.run(until=60)
        net.heal()
        sim.run(until=120)
        assert detectors["n0"]._timeouts["n1"] > before

    def test_non_adaptive_keeps_timeout(self):
        sim, net, nodes, detectors = build(adaptive=False)
        before = detectors["n0"]._timeouts["n1"]
        net.partition(["n0"], ["n1", "n2"])
        sim.run(until=60)
        net.heal()
        sim.run(until=120)
        assert detectors["n0"]._timeouts["n1"] == before

    def test_recovered_node_resumes_heartbeats_and_is_unsuspected(self):
        sim, net, nodes, detectors = build()
        sim.schedule(30.0, nodes["n1"].crash)
        sim.schedule(100.0, nodes["n1"].recover)
        sim.run(until=200)
        assert not detectors["n0"].is_suspected("n1")
        assert not detectors["n2"].is_suspected("n1")

    def test_recovered_node_does_not_suspect_the_world(self):
        sim, net, nodes, detectors = build()
        sim.schedule(30.0, nodes["n1"].crash)
        sim.schedule(150.0, nodes["n1"].recover)
        sim.run(until=160)  # right after recovery, before fresh heartbeats
        assert not detectors["n1"].suspected, (
            "stale last-heard state must be reset on recovery"
        )
        sim.run(until=300)
        assert not detectors["n1"].suspected


class TestInjectorIntegration:
    def test_injector_schedule_is_recorded(self):
        sim, net, nodes, detectors = build()
        injector = FailureInjector(sim, net)
        injector.crash_at(10.0, "n0")
        injector.recover_at(50.0, "n0")
        injector.heal_at(60.0)
        kinds = [kind for _t, kind, _arg in injector.planned]
        assert kinds == ["crash", "recover", "heal"]
        sim.run(until=100)
        assert not nodes["n0"].crashed

    def test_random_crashes_deterministic_per_seed(self):
        def schedule(seed):
            sim, net, nodes, _ = build(seed=seed)
            injector = FailureInjector(sim, net)
            return injector.random_crashes(list(nodes), 2, (10.0, 90.0))
        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_random_crashes_rejects_oversubscription(self):
        sim, net, nodes, _ = build()
        injector = FailureInjector(sim, net)
        with pytest.raises(ValueError):
            injector.random_crashes(list(nodes), 99, (0.0, 1.0))
