"""Tests for two-phase commit."""

import pytest

from repro.db import TwoPhaseCoordinator, TwoPhaseParticipant
from repro.net import ConstantLatency, Network, Node
from repro.sim import Simulator


class Site:
    """A node with a 2PC participant and a scriptable vote."""

    def __init__(self, sim, net, name, vote=True):
        self.node = Node(sim, net, name)
        self.vote = vote
        self.decisions = []
        self.participant = TwoPhaseParticipant(
            self.node,
            on_prepare=lambda txn, coordinator: self.vote,
            on_decision=lambda txn, commit: self.decisions.append((txn, commit)),
        )


@pytest.fixture
def rig():
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(1.0))
    coordinator_node = Node(sim, net, "coord")
    coordinator = TwoPhaseCoordinator(coordinator_node, vote_timeout=30.0)
    sites = {name: Site(sim, net, name) for name in ("p1", "p2", "p3")}
    return sim, net, coordinator, sites


class TestDecisions:
    def test_unanimous_yes_commits(self, rig):
        sim, _, coordinator, sites = rig
        outcome = coordinator.run("t1", list(sites))
        sim.run(until=100)
        assert outcome.result is True
        for site in sites.values():
            assert site.decisions == [("t1", True)]

    def test_single_no_vote_aborts_everywhere(self, rig):
        sim, _, coordinator, sites = rig
        sites["p2"].vote = False
        outcome = coordinator.run("t1", list(sites))
        sim.run(until=100)
        assert outcome.result is False
        for site in sites.values():
            assert site.decisions == [("t1", False)]

    def test_coordinator_local_no_vote_skips_prepare(self, rig):
        sim, net, coordinator, sites = rig
        outcome = coordinator.run("t1", list(sites), local_vote=False)
        sim.run(until=100)
        assert outcome.result is False
        assert net.stats.by_type.get("2pc.prepare", 0) == 0

    def test_participant_crash_before_vote_aborts(self, rig):
        sim, _, coordinator, sites = rig
        sites["p3"].node.crash()
        outcome = coordinator.run("t1", list(sites))
        sim.run(until=200)
        assert outcome.result is False
        # survivors learn the abort
        assert sites["p1"].decisions == [("t1", False)]

    def test_no_participants_decides_locally(self, rig):
        sim, _, coordinator, _ = rig
        outcome = coordinator.run("t1", [])
        sim.run(until=10)
        assert outcome.result is True

    def test_stats_counted(self, rig):
        sim, _, coordinator, sites = rig
        coordinator.run("t1", list(sites))
        sim.run(until=100)
        sites["p1"].vote = False
        coordinator.run("t2", list(sites))
        sim.run(until=200)
        assert coordinator.rounds == 2
        assert coordinator.committed == 1
        assert coordinator.aborted == 1


class TestBlocking:
    def test_yes_voter_is_in_doubt_until_decision(self, rig):
        sim, net, coordinator, sites = rig
        outcome = coordinator.run("t1", list(sites))
        sim.run(until=1.5)  # prepare delivered, decision not yet
        assert "t1" in sites["p1"].participant.in_doubt
        sim.run(until=100)
        assert "t1" not in sites["p1"].participant.in_doubt
        assert outcome.result is True

    def test_coordinator_crash_leaves_participants_blocked(self, rig):
        sim, net, coordinator, sites = rig
        coordinator.run("t1", list(sites))
        # Crash the coordinator after prepare is sent but before it can
        # collect votes (votes take 2 time units round trip).
        sim.schedule(1.5, coordinator.node.crash)
        sim.run(until=500)
        for site in sites.values():
            assert "t1" in site.participant.in_doubt, "participant must block"
            assert site.participant.blocked_for("t1") > 400
            assert site.decisions == []

    def test_operator_resolves_in_doubt(self, rig):
        sim, net, coordinator, sites = rig
        coordinator.run("t1", list(sites))
        sim.schedule(1.5, coordinator.node.crash)
        sim.run(until=100)
        resolved = sites["p1"].participant.resolve_in_doubt(commit=False)
        assert resolved == ["t1"]
        assert sites["p1"].decisions == [("t1", False)]
