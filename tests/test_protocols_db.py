"""Integration tests for the database replication techniques."""

import pytest

from repro import AC, END, EX, RE, SC, Operation, ReplicatedSystem
from repro.analysis import (
    check_one_copy_serializable,
    counter_check,
    history_from_results,
)
from repro.workload import WorkloadSpec, run_workload


def drive(system, n, gap=25.0, ops_factory=None, client=0):
    ops_factory = ops_factory or (lambda i: [Operation.update("x", "add", 1)])
    def loop():
        results = []
        for i in range(n):
            results.append((yield system.client(client).submit(ops_factory(i))))
            yield system.sim.timeout(gap)
        return results
    handle = system.sim.spawn(loop())
    system.sim.run_until_done(handle)
    return handle.result


class TestEagerPrimary:
    def test_update_commits_everywhere_before_response(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=1)
        result = system.execute([Operation.update("x", "add", 5)])
        assert result.committed
        # Eager: by response time every secondary has installed the write.
        for name in system.replica_names:
            assert system.store_of(name).read("x") == 5

    def test_phase_sequence_matches_figure_7(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=1)
        result = system.execute([Operation.write("x", 1)])
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        assert observed == [RE, EX, AC, AC, END]  # AC(propagation) + AC(2pc)
        collapsed = system.tracer.observed_sequence(
            result.request_id, source="r0", collapse=True
        )
        assert collapsed == [RE, EX, AC, END]
        assert system.tracer.mechanisms_used(result.request_id)[AC] == "2pc"

    def test_multi_op_loops_ex_ac_per_operation(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=1)
        result = system.execute(
            [Operation.write("x", 1), Operation.write("y", 2), Operation.write("z", 3)]
        )
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        # Figure 12: RE, then (EX, AC-propagation) per op, final AC(2pc), END.
        assert observed == [RE, EX, AC, EX, AC, EX, AC, AC, END]

    def test_reads_served_by_any_site(self):
        system = ReplicatedSystem("eager_primary", replicas=3, clients=2, seed=2)
        system.execute([Operation.write("x", 42)])
        # client 1's home is r1, a secondary
        result = system.execute([Operation.read("x")], client=1)
        assert result.committed and result.server == "r1"
        assert result.value == 42

    def test_update_at_secondary_is_rejected(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=3)
        request_future = system.client(0).submit([Operation.write("x", 1)])
        system.directory.set_primary("r1")  # make the client's target stale
        system.sim.run(until=5)
        # r0 received it while the directory said r0... force direct path:
        proto = system.protocol_at("r2")
        from repro.core.operations import Request
        request = Request.make([Operation.write("y", 9)], client="c0")
        proto.handle_request(request, "c0")
        system.sim.run(until=50)
        assert system.store_of("r2").read("y") is None

    def test_failover_continues_service(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=4,
                                  fd_interval=2.0, fd_timeout=8.0)
        system.injector.crash_at(60.0, "r0")
        results = drive(system, 6, gap=30.0)
        assert all(r.committed for r in results)
        assert system.directory.primary == "r1"
        system.settle(300)
        for name in system.live_replicas():
            assert system.store_of(name).read("x") == 6

    def test_counter_oracle_under_failover(self):
        for crash_at in (55.0, 62.0, 71.0):
            system = ReplicatedSystem("eager_primary", replicas=3, seed=5,
                                      fd_interval=2.0, fd_timeout=8.0)
            system.injector.crash_at(crash_at, "r0")
            results = drive(system, 6, gap=20.0)
            system.settle(400)
            committed = [r for r in results if r.committed]
            stores = {n: system.store_of(n) for n in system.live_replicas()}
            violations = counter_check(committed, stores, strict=False)
            assert not violations, f"crash_at={crash_at}: {violations}"


class TestEagerUELocking:
    def test_write_locks_taken_at_all_sites(self):
        system = ReplicatedSystem("eager_ue_locking", replicas=3, seed=1)
        result = system.execute([Operation.update("x", "add", 3)])
        assert result.committed
        for name in system.replica_names:
            assert system.store_of(name).read("x") == 3
            assert system.replicas[name].tm.locks.holders_of("x") == {}

    def test_phase_sequence_matches_figure_8(self):
        system = ReplicatedSystem("eager_ue_locking", replicas=3, seed=1)
        result = system.execute([Operation.write("x", 1)])
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        assert observed == [RE, SC, EX, AC, END]
        mechanisms = system.tracer.mechanisms_used(result.request_id)
        assert mechanisms[SC] == "locks" and mechanisms[AC] == "2pc"

    def test_multi_op_loops_sc_ex_per_operation(self):
        system = ReplicatedSystem("eager_ue_locking", replicas=3, seed=1)
        result = system.execute([Operation.write("x", 1), Operation.write("y", 2)])
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        # Figure 13: RE, (SC, EX) per op, AC(2pc), END.
        assert observed == [RE, SC, EX, SC, EX, AC, END]

    def test_any_site_accepts_updates(self):
        system = ReplicatedSystem("eager_ue_locking", replicas=3, clients=3, seed=2)
        r0 = system.execute([Operation.update("x", "add", 1)], client=0)
        r1 = system.execute([Operation.update("x", "add", 1)], client=1)
        r2 = system.execute([Operation.update("x", "add", 1)], client=2)
        assert {r0.server, r1.server, r2.server} == {"r0", "r1", "r2"}
        for name in system.replica_names:
            assert system.store_of(name).read("x") == 3

    def test_distributed_deadlock_broken_by_timeout(self):
        # Two delegates update the same two items in opposite orders,
        # concurrently: a distributed deadlock no single site can see.
        system = ReplicatedSystem(
            "eager_ue_locking", replicas=2, clients=2, seed=3,
            config={"lock_timeout": 25.0},
        )
        f1 = system.client(0).submit(
            [Operation.update("a", "add", 1), Operation.update("b", "add", 1)]
        )
        f2 = system.client(1).submit(
            [Operation.update("b", "add", 10), Operation.update("a", "add", 10)]
        )
        done = system.sim.all_of([f1, f2])
        r1, r2 = system.sim.run_until_done(done)
        assert not (r1.committed and r2.committed), "deadlock must abort someone"
        system.settle(200)
        assert system.converged()
        committed = [r for r in (r1, r2) if r.committed]
        stores = {n: system.store_of(n) for n in system.replica_names}
        assert not counter_check(committed, stores, strict=False)

    def test_concurrent_counter_increments_are_serializable(self):
        spec = WorkloadSpec(items=3, read_fraction=0.0, ops_per_transaction=2)
        system, driver, summary = run_workload(
            "eager_ue_locking", spec=spec, replicas=3, clients=3,
            requests_per_client=6, seed=9, settle=400.0,
        )
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        assert not counter_check(
            [r for r in driver.results if r.committed], stores, strict=False
        )
        assert system.converged()


class TestEagerUEAbcast:
    def test_total_order_execution_converges(self):
        spec = WorkloadSpec(items=3, read_fraction=0.0, ops_per_transaction=2)
        system, driver, summary = run_workload(
            "eager_ue_abcast", spec=spec, replicas=3, clients=3,
            requests_per_client=6, seed=4, settle=400.0,
        )
        assert summary.abort_rate == 0.0, "conservative execution never aborts"
        assert system.converged()
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        assert not counter_check(driver.results, stores, strict=False)

    def test_phase_sequence_matches_figure_9(self):
        system = ReplicatedSystem("eager_ue_abcast", replicas=3, seed=1)
        result = system.execute([Operation.write("x", 1)])
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        assert observed == [RE, SC, EX, END]
        assert system.tracer.mechanisms_used(result.request_id)[SC] == "abcast"

    def test_read_only_requests_stay_local(self):
        system = ReplicatedSystem("eager_ue_abcast", replicas=3, seed=2)
        before = system.net.stats.by_type.get("rt.data", 0)
        result = system.execute([Operation.read("x")])
        after = system.net.stats.by_type.get("rt.data", 0)
        assert result.committed
        assert after == before, "reads must not be broadcast"


class TestLazyPrimary:
    def test_response_precedes_propagation(self):
        system = ReplicatedSystem("lazy_primary", replicas=3, seed=1,
                                  config={"propagation_delay": 30.0})
        result = system.execute([Operation.write("x", "fresh")])
        assert result.committed
        # At response time, secondaries are still stale: weak consistency.
        assert system.store_of("r0").read("x") == "fresh"
        assert system.store_of("r1").read("x") is None
        system.settle(200)
        assert system.store_of("r1").read("x") == "fresh"

    def test_phase_sequence_matches_figure_10(self):
        system = ReplicatedSystem("lazy_primary", replicas=3, seed=1)
        result = system.execute([Operation.write("x", 1)])
        system.settle(200)
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        assert observed == [RE, EX, END, AC], "lazy: END before AC"

    def test_stale_reads_at_secondaries(self):
        system = ReplicatedSystem("lazy_primary", replicas=3, clients=2, seed=2,
                                  config={"propagation_delay": 50.0})
        system.execute([Operation.write("x", "v1")])
        stale = system.execute([Operation.read("x")], client=1)  # home r1
        assert stale.committed and stale.value is None, "secondary must be stale"
        system.settle(300)
        fresh = system.execute([Operation.read("x")], client=1)
        assert fresh.value == "v1"

    def test_batched_propagation(self):
        system = ReplicatedSystem("lazy_primary", replicas=2, seed=3,
                                  config={"batch_interval": 40.0})
        drive(system, 3, gap=5.0)
        assert system.store_of("r1").read("x") is None
        system.settle(300)
        assert system.store_of("r1").read("x") == 3

    def test_fifo_apply_preserves_primary_commit_order(self):
        system = ReplicatedSystem("lazy_primary", replicas=2, seed=4,
                                  config={"propagation_delay": 10.0})
        drive(system, 5, gap=3.0, ops_factory=lambda i: [Operation.write("x", i)])
        system.settle(300)
        assert system.store_of("r1").read("x") == 4
        assert system.converged()


class TestLazyUE:
    def test_local_commit_immediate_response(self):
        system = ReplicatedSystem("lazy_ue", replicas=3, clients=3, seed=1)
        result = system.execute([Operation.write("x", 1)])
        assert result.committed and result.server == "r0"
        assert result.latency <= 4.0

    def test_conflicting_sites_converge_by_lww(self):
        system = ReplicatedSystem("lazy_ue", replicas=3, clients=3, seed=2,
                                  config={"propagation_delay": 15.0})
        futures = [
            system.client(i).submit([Operation.write("x", f"from-r{i}")])
            for i in range(3)
        ]
        system.sim.run_until_done(system.sim.all_of(futures))
        system.settle(400)
        assert system.converged()
        final = {system.store_of(n).read("x") for n in system.replica_names}
        assert len(final) == 1

    def test_undone_transactions_are_counted(self):
        system = ReplicatedSystem("lazy_ue", replicas=2, clients=2, seed=3,
                                  config={"propagation_delay": 15.0})
        f0 = system.client(0).submit([Operation.write("x", "a")])
        f1 = system.client(1).submit([Operation.write("x", "b")])
        system.sim.run_until_done(system.sim.all_of([f0, f1]))
        system.settle(300)
        undone = sum(
            system.protocol_at(n).undone_transactions for n in system.replica_names
        )
        assert undone >= 1, "one of the conflicting writes must lose"

    def test_site_priority_reconciliation(self):
        system = ReplicatedSystem(
            "lazy_ue", replicas=2, clients=2, seed=4,
            config={
                "reconciliation": "priority",
                "priorities": {"r0": 10, "r1": 1},
                "propagation_delay": 10.0,
            },
        )
        f0 = system.client(0).submit([Operation.write("x", "primary-site")])
        f1 = system.client(1).submit([Operation.write("x", "edge-site")])
        system.sim.run_until_done(system.sim.all_of([f0, f1]))
        system.settle(300)
        assert all(
            system.store_of(n).read("x") == "primary-site"
            for n in system.replica_names
        )

    def test_phase_sequence_matches_figure_11(self):
        system = ReplicatedSystem("lazy_ue", replicas=3, seed=5)
        result = system.execute([Operation.write("x", 1)])
        system.settle(200)
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        assert observed == [RE, EX, END, AC]


class TestCertification:
    def test_conflict_free_transactions_commit(self):
        system = ReplicatedSystem("certification", replicas=3, seed=1)
        r1 = system.execute([Operation.update("x", "add", 1)])
        r2 = system.execute([Operation.update("y", "add", 1)])
        assert r1.committed and r2.committed
        system.settle(200)
        assert system.converged()

    def test_concurrent_conflict_aborts_exactly_one(self):
        system = ReplicatedSystem("certification", replicas=3, clients=2, seed=2)
        ops = [Operation.update("x", "add", 1)]
        f0 = system.client(0).submit(ops)
        f1 = system.client(1).submit(list(ops))
        r0, r1 = system.sim.run_until_done(system.sim.all_of([f0, f1]))
        assert r0.committed != r1.committed, "exactly one must pass certification"
        system.settle(300)
        assert system.converged()
        assert all(system.store_of(n).read("x") == 1 for n in system.live_replicas())

    def test_all_sites_certify_identically(self):
        spec = WorkloadSpec(items=3, read_fraction=0.2, ops_per_transaction=2)
        system, driver, summary = run_workload(
            "certification", spec=spec, replicas=3, clients=3,
            requests_per_client=6, seed=3, settle=400.0,
        )
        certified = [system.protocol_at(n).certifier for n in system.replica_names]
        outcomes = {(c.certified, c.rejected) for c in certified}
        assert len(outcomes) == 1, f"sites disagree: {outcomes}"
        assert system.converged()

    def test_phase_sequence_matches_figure_14(self):
        system = ReplicatedSystem("certification", replicas=3, seed=4)
        result = system.execute([Operation.write("x", 1)])
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        assert observed == [RE, EX, AC, END]
        assert "certification" in system.tracer.mechanisms_used(result.request_id)[AC]

    def test_aborted_transactions_leave_no_trace(self):
        system = ReplicatedSystem("certification", replicas=3, clients=2, seed=5)
        f0 = system.client(0).submit([Operation.update("x", "add", 100)])
        f1 = system.client(1).submit([Operation.update("x", "add", 23)])
        r0, r1 = system.sim.run_until_done(system.sim.all_of([f0, f1]))
        system.settle(300)
        winner = r0 if r0.committed else r1
        expected = winner.operations[0].argument
        assert all(
            system.store_of(n).read("x") == expected for n in system.live_replicas()
        )

    def test_serializable_history_with_retries(self):
        spec = WorkloadSpec(items=4, read_fraction=0.0, ops_per_transaction=1)
        system, driver, summary = run_workload(
            "certification", spec=spec, replicas=3, clients=3,
            requests_per_client=5, seed=6, retry_aborts=True, settle=400.0,
        )
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        committed = [r for r in driver.results if r.committed]
        assert not counter_check(committed, stores, strict=False)
        assert check_one_copy_serializable(committed, strict=False) is None


class TestLazyUEAbcastOrdering:
    """Section 4.6's alternative: after-commit order via atomic broadcast."""

    def test_concurrent_conflicts_converge_without_timestamps(self):
        system = ReplicatedSystem(
            "lazy_ue", replicas=3, clients=3, seed=6,
            config={"reconciliation": "abcast", "propagation_delay": 12.0},
        )
        futures = [
            system.client(i).submit([Operation.write("x", f"from-r{i}")])
            for i in range(3)
        ]
        results = system.sim.run_until_done(system.sim.all_of(futures))
        assert all(r.committed for r in results)
        system.settle(500)
        assert system.converged(), system.divergent_replicas()

    def test_all_sites_apply_same_order(self):
        spec = WorkloadSpec(items=2, read_fraction=0.0)
        system, driver, summary = run_workload(
            "lazy_ue", spec=spec, replicas=3, clients=3, requests_per_client=6,
            seed=7, settle=600.0,
            config={"reconciliation": "abcast", "propagation_delay": 10.0},
        )
        assert system.converged(), system.divergent_replicas()

    def test_order_inversions_counted_as_undone(self):
        # Two sites commit to the same item at different times; make the
        # earlier commit propagate later, so the ABCAST order inverts the
        # commit order somewhere across several seeds.
        inversions = 0
        for seed in range(6):
            system = ReplicatedSystem(
                "lazy_ue", replicas=2, clients=2, seed=seed,
                config={"reconciliation": "abcast", "propagation_delay": 10.0},
            )
            def submit_pair():
                f0 = system.client(0).submit([Operation.write("x", "first")])
                yield system.sim.timeout(3.0)
                f1 = system.client(1).submit([Operation.write("x", "second")])
                yield system.sim.all_of([f0, f1])
            handle = system.sim.spawn(submit_pair())
            system.sim.run_until_done(handle)
            system.settle(400)
            assert system.converged()
            inversions += sum(
                system.protocol_at(n).undone_transactions
                for n in system.replica_names
            )
        # Inversions are possible but not guaranteed; the counter must at
        # least be well-defined and convergence must never depend on it.
        assert inversions >= 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedSystem("lazy_ue", replicas=2, seed=1,
                             config={"reconciliation": "vector-clocks"})
