"""Tests for the ReplicatedSystem builder, clients, directory, routing."""

import pytest

from repro import Operation, ReplicatedSystem, ReplicationError
from repro.core.system import Directory


class TestBuilder:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ReplicationError):
            ReplicatedSystem("paxos-deluxe")

    def test_replica_and_client_names(self):
        system = ReplicatedSystem("active", replicas=4, clients=2)
        assert system.replica_names == ["r0", "r1", "r2", "r3"]
        assert [c.name for c in system.clients] == ["c0", "c1"]

    def test_clients_get_round_robin_homes(self):
        system = ReplicatedSystem("lazy_ue", replicas=3, clients=5)
        assert [c.home for c in system.clients] == ["r0", "r1", "r2", "r0", "r1"]

    def test_protocol_info_exposed(self):
        system = ReplicatedSystem("passive")
        assert system.info.client_policy == "primary"
        assert system.info.community == "ds"

    def test_same_seed_same_outcome(self):
        def run():
            system = ReplicatedSystem("certification", replicas=3, clients=2, seed=9)
            f0 = system.client(0).submit([Operation.update("x", "add", 1)])
            f1 = system.client(1).submit([Operation.update("x", "add", 1)])
            r0, r1 = system.sim.run_until_done(system.sim.all_of([f0, f1]))
            return (r0.committed, r1.committed, r0.latency, r1.latency)
        assert run() == run()

    def test_config_passed_to_protocols(self):
        system = ReplicatedSystem("lazy_primary", config={"propagation_delay": 77.0})
        assert system.protocol_at("r0").propagation_delay == 77.0


class TestDirectory:
    def test_initial_primary_is_first(self):
        directory = Directory(["a", "b", "c"])
        assert directory.primary == "a"

    def test_set_primary_counts_changes(self):
        directory = Directory(["a", "b"])
        directory.set_primary("b")
        directory.set_primary("b")  # no-op
        assert directory.primary == "b"
        assert directory.changes == 1

    def test_non_member_rejected(self):
        with pytest.raises(ReplicationError):
            Directory(["a"]).set_primary("z")


class TestClientRouting:
    def test_all_policy_reaches_every_replica(self):
        system = ReplicatedSystem("active", replicas=3)
        system.execute([Operation.write("x", 1)])
        assert system.net.stats.by_type["client.request"] == 3

    def test_primary_policy_single_target(self):
        system = ReplicatedSystem("passive", replicas=3)
        system.execute([Operation.write("x", 1)])
        assert system.net.stats.by_type["client.request"] == 1

    def test_local_policy_uses_home(self):
        system = ReplicatedSystem("lazy_ue", replicas=3, clients=2)
        result = system.execute([Operation.write("x", 1)], client=1)
        assert result.server == "r1"

    def test_client_gives_up_after_max_retries(self):
        system = ReplicatedSystem("passive", replicas=2, client_timeout=20.0,
                                  max_client_retries=2, fd_interval=1000.0,
                                  fd_timeout=4000.0)
        for name in system.replica_names:
            system.replicas[name].node.crash()
        result = system.execute([Operation.write("x", 1)])
        assert not result.committed
        assert result.reason == "client gave up"
        assert result.retries == 3

    def test_local_client_fails_over_to_next_live_replica(self):
        system = ReplicatedSystem("lazy_ue", replicas=3, client_timeout=30.0)
        system.replicas["r0"].node.crash()
        result = system.execute([Operation.write("x", 1)])
        assert result.committed
        assert result.server == "r1"
        assert result.retries == 1


class TestSystemHelpers:
    def test_next_live_replica_skips_crashed(self):
        system = ReplicatedSystem("active", replicas=3)
        system.replicas["r1"].node.crash()
        assert system.next_live_replica("r0") == "r2"

    def test_converged_ignores_crashed_by_default(self):
        system = ReplicatedSystem("lazy_primary", replicas=3,
                                  config={"propagation_delay": 5.0})
        system.execute([Operation.write("x", 1)])
        system.replicas["r2"].node.crash()  # r2 may be stale forever
        system.settle(300)
        assert system.converged()

    def test_divergent_replicas_reports_values(self):
        system = ReplicatedSystem("lazy_primary", replicas=2,
                                  config={"propagation_delay": 1000.0})
        system.execute([Operation.write("x", 1)])
        report = system.divergent_replicas()
        assert set(report) == {"r0", "r1"}
        assert report["r0"] != report["r1"]

    def test_crash_aborts_active_transactions(self):
        system = ReplicatedSystem("lazy_primary", replicas=2)
        tm = system.replicas["r0"].tm
        txn = tm.begin("hanging")
        system.replicas["r0"].node.crash()
        assert tm.active == {}
        assert tm.aborted_count == 1
