"""Tests for group membership and view-synchronous broadcast (VSCAST)."""

import pytest
from helpers import GroupHarness

from repro.errors import ReplicationError
from repro.groupcomm import ViewSyncGroup


def attach(h, members=None, state=None):
    members = members if members is not None else h.names
    groups = {}
    views = {name: [] for name in h.names}
    app_state = state if state is not None else {name: [] for name in h.names}
    for name in h.names:
        def on_view(view, n=name):
            views[n].append(view)
        groups[name] = ViewSyncGroup(
            h.nodes[name],
            h.transports[name],
            h.detectors[name],
            list(members),
            h.sink(name),
            on_view_change=on_view,
            get_state=lambda n=name: list(app_state[n]),
            set_state=lambda s, n=name: app_state[n].__setitem__(slice(None), s),
        )
    return groups, views, app_state


class TestNormalOperation:
    def test_vscast_reaches_all_members(self):
        h = GroupHarness(3)
        groups, _, _ = attach(h)
        groups["n0"].vscast("update", key="x", value=1)
        h.run(until=100)
        for name in h.names:
            assert h.delivered[name] == [("n0", "update", {"key": "x", "value": 1})]

    def test_initial_view_is_zero_with_all_members(self):
        h = GroupHarness(3)
        groups, _, _ = attach(h)
        assert groups["n0"].view.view_id == 0
        assert set(groups["n0"].view.members) == set(h.names)

    def test_non_member_cannot_vscast(self):
        h = GroupHarness(3)
        groups, _, _ = attach(h, members=["n0", "n1"])
        with pytest.raises(ReplicationError):
            groups["n2"].vscast("update")

    def test_sender_delivers_its_own_message_first(self):
        h = GroupHarness(2)
        groups, _, _ = attach(h)
        groups["n0"].vscast("update", i=0)
        assert len(h.delivered["n0"]) == 1  # local delivery is synchronous
        h.run(until=50)
        assert len(h.delivered["n1"]) == 1


class TestViewChanges:
    def test_crash_triggers_new_view_excluding_victim(self):
        h = GroupHarness(3, fd_interval=2.0, fd_timeout=6.0)
        groups, views, _ = attach(h)
        h.sim.schedule(5.0, h.nodes["n2"].crash)
        h.run(until=500)
        for name in ("n0", "n1"):
            assert views[name], f"{name} installed no new view"
            last = views[name][-1]
            assert set(last.members) == {"n0", "n1"}
        assert views["n0"][-1].view_id == views["n1"][-1].view_id

    def test_view_synchrony_uniform_delivery_before_install(self):
        # The crashing member multicasts "just before" dying.  Survivors
        # must agree: either both deliver it before the new view, or none.
        for seed in range(6):
            h = GroupHarness(3, seed=seed, jitter=True, fd_interval=2.0, fd_timeout=6.0)
            groups, views, _ = attach(h)
            h.sim.schedule(5.0, lambda: groups["n2"].vscast("update", tag="last-words"))
            h.sim.schedule(5.0 + seed * 0.4, h.nodes["n2"].crash)
            h.run(until=800)
            survivors = ("n0", "n1")
            got = {
                name: [b.get("tag") for _, _, b in h.delivered[name]]
                for name in survivors
            }
            assert got["n0"] == got["n1"], f"seed {seed}: VS violated {got}"
            for name in survivors:
                assert views[name] and set(views[name][-1].members) == set(survivors)

    def test_messages_continue_after_view_change(self):
        h = GroupHarness(3, fd_interval=2.0, fd_timeout=6.0)
        groups, views, _ = attach(h)
        h.sim.schedule(5.0, h.nodes["n2"].crash)
        h.sim.schedule(100.0, lambda: groups["n0"].vscast("update", tag="after"))
        h.run(until=300)
        for name in ("n0", "n1"):
            tags = [b.get("tag") for _, _, b in h.delivered[name]]
            assert "after" in tags

    def test_sequential_crashes_shrink_view(self):
        h = GroupHarness(5, fd_interval=2.0, fd_timeout=6.0)
        groups, views, _ = attach(h)
        h.sim.schedule(5.0, h.nodes["n4"].crash)
        h.sim.schedule(120.0, h.nodes["n3"].crash)
        h.run(until=600)
        for name in ("n0", "n1", "n2"):
            assert set(views[name][-1].members) == {"n0", "n1", "n2"}

    def test_vscast_during_view_change_is_queued_not_lost(self):
        h = GroupHarness(3, fd_interval=2.0, fd_timeout=6.0)
        groups, views, _ = attach(h)
        h.sim.schedule(5.0, h.nodes["n2"].crash)

        def send_during_change():
            # By t=14 the detectors have suspected n2 and the flush started.
            groups["n0"].vscast("update", tag="mid-change")
        h.sim.schedule(14.0, send_during_change)
        h.run(until=500)
        for name in ("n0", "n1"):
            tags = [b.get("tag") for _, _, b in h.delivered[name]]
            assert "mid-change" in tags, f"{name}: {tags}"


class TestJoin:
    def test_join_installs_member_with_state(self):
        h = GroupHarness(3, fd_interval=2.0, fd_timeout=6.0)
        app_state = {name: ["seeded"] if name != "n2" else [] for name in h.names}
        groups, views, state = attach(h, members=["n0", "n1"], state=app_state)
        h.sim.schedule(10.0, lambda: groups["n2"].join(["n0"]))
        h.run(until=500)
        assert groups["n2"].member
        assert set(groups["n2"].view.members) == {"n0", "n1", "n2"}
        assert state["n2"] == ["seeded"], "state transfer must seed the joiner"

    def test_joined_member_receives_subsequent_vscasts(self):
        h = GroupHarness(3, fd_interval=2.0, fd_timeout=6.0)
        groups, views, _ = attach(h, members=["n0", "n1"])
        h.sim.schedule(10.0, lambda: groups["n2"].join(["n0"]))
        h.sim.schedule(200.0, lambda: groups["n1"].vscast("update", tag="hello-joiner"))
        h.run(until=400)
        tags = [b.get("tag") for _, _, b in h.delivered["n2"]]
        assert "hello-joiner" in tags
