"""Tests for the five-phase functional model and phase tracing."""

import pytest

from repro import AC, END, EX, RE, SC, PhaseDescriptor, PhaseStep, PhaseTracer
from repro.core.classification import (
    db_matrix,
    ds_matrix,
    satisfies_strong_consistency_rule,
    strong_consistency_combinations,
    synthetic_view,
)
from repro.core.protocols import REGISTRY
from repro.sim import Simulator, TraceLog


def make_descriptor(*phases, loop=None):
    return PhaseDescriptor(
        technique="test", steps=tuple(PhaseStep(p) for p in phases), loop=loop
    )


class TestPhaseDescriptor:
    def test_phase_names(self):
        d = make_descriptor(RE, SC, EX, AC, END)
        assert d.phase_names() == [RE, SC, EX, AC, END]

    def test_expand_without_loop(self):
        d = make_descriptor(RE, EX, END)
        assert d.expand(5) == [RE, EX, END]

    def test_expand_with_loop(self):
        d = make_descriptor(RE, EX, AC, END, loop=(1, 2))
        assert d.expand(1) == [RE, EX, AC, END]
        assert d.expand(3) == [RE, EX, AC, EX, AC, EX, AC, END]

    def test_render_marks_loop(self):
        d = make_descriptor(RE, SC, EX, END, loop=(1, 2))
        rendered = d.render()
        assert "[SC" in rendered and "EX]*" in rendered

    def test_lazy_detection(self):
        lazy = make_descriptor(RE, EX, END, AC)
        eager = make_descriptor(RE, EX, AC, END)
        assert lazy.responds_before_agreement
        assert not eager.responds_before_agreement

    def test_uses_and_index(self):
        d = make_descriptor(RE, EX, END)
        assert d.uses(EX) and not d.uses(SC)
        assert d.index_of(END) == 2 and d.index_of(AC) == -1


class TestPhaseTracer:
    def test_records_and_reads_back_sequence(self):
        sim = Simulator()
        tracer = PhaseTracer(TraceLog(sim))
        for phase in (RE, EX, END):
            tracer.record("r0", "req1", phase)
        assert tracer.observed_sequence("req1") == [RE, EX, END]

    def test_rejects_unknown_phase(self):
        tracer = PhaseTracer(TraceLog(Simulator()))
        with pytest.raises(ValueError):
            tracer.record("r0", "req1", "WARMUP")

    def test_sequences_are_per_request_and_source(self):
        tracer = PhaseTracer(TraceLog(Simulator()))
        tracer.record("r0", "a", RE)
        tracer.record("r1", "a", EX)
        tracer.record("r0", "b", RE)
        assert tracer.observed_sequence("a") == [RE, EX]
        assert tracer.observed_sequence("a", source="r0") == [RE]

    def test_collapse_folds_loop_iterations(self):
        tracer = PhaseTracer(TraceLog(Simulator()))
        for phase in (RE, EX, AC, EX, AC, END):
            tracer.record("r0", "req", phase)
        assert tracer.observed_sequence("req", collapse=True) == [RE, EX, AC, END]

    def test_matches_with_iterations(self):
        tracer = PhaseTracer(TraceLog(Simulator()))
        d = make_descriptor(RE, EX, AC, END, loop=(1, 2))
        for phase in (RE, EX, AC, EX, AC, END):
            tracer.record("r0", "req", phase)
        assert tracer.matches(d, "req", iterations=2)
        assert not tracer.matches(d, "req", iterations=3)

    def test_mechanisms_used(self):
        tracer = PhaseTracer(TraceLog(Simulator()))
        tracer.record("r0", "req", SC, mechanism="abcast")
        tracer.record("r0", "req", AC, mechanism="2pc")
        assert tracer.mechanisms_used("req") == {SC: "abcast", AC: "2pc"}


class TestPaperFigure16Rows:
    """The declared descriptors must equal the rows of Figure 16."""

    EXPECTED_ROWS = {
        "active": [RE, SC, EX, END],
        "passive": [RE, EX, AC, END],
        "semi_active": [RE, SC, EX, AC, END],
        "eager_primary": [RE, EX, AC, END],
        "eager_ue_locking": [RE, SC, EX, AC, END],
        "eager_ue_abcast": [RE, SC, EX, END],
        "lazy_primary": [RE, EX, END, AC],
        "lazy_ue": [RE, EX, END, AC],
        "certification": [RE, EX, AC, END],
    }

    @pytest.mark.parametrize("name,row", sorted(EXPECTED_ROWS.items()))
    def test_descriptor_matches_paper_row(self, name, row):
        assert REGISTRY[name].info.descriptor.phase_names() == row

    def test_lazy_rows_are_the_weak_consistency_ones(self):
        for name, info in ((n, REGISTRY[n].info) for n in self.EXPECTED_ROWS):
            is_lazy_row = info.descriptor.responds_before_agreement
            assert is_lazy_row == (info.consistency == "weak"), name


class TestClassification:
    def test_fig5_quadrants(self):
        matrix = ds_matrix()
        assert matrix[(True, True)] == ["active"]
        assert set(matrix[(True, False)]) == {"semi_active", "semi_passive"}
        assert matrix[(False, False)] == ["passive"]

    def test_fig6_quadrants(self):
        matrix = db_matrix()
        assert matrix[("eager", "primary")] == ["eager_primary"]
        assert set(matrix[("eager", "everywhere")]) == {
            "eager_ue_locking", "eager_ue_abcast", "certification",
        }
        assert matrix[("lazy", "primary")] == ["lazy_primary"]
        assert matrix[("lazy", "everywhere")] == ["lazy_ue"]

    def test_fig15_exactly_three_strong_combinations(self):
        combos = strong_consistency_combinations()
        assert sorted(map(tuple, combos)) == sorted(
            [
                (RE, SC, EX, AC, END),
                (RE, EX, AC, END),
                (RE, SC, EX, END),
            ]
        )

    def test_fig15_rule_holds_for_every_strong_technique(self):
        for cls in REGISTRY.values():
            info = cls.info
            if info.consistency == "strong":
                assert satisfies_strong_consistency_rule(info.descriptor), info.name
            else:
                assert not satisfies_strong_consistency_rule(info.descriptor), info.name

    def test_fig16_has_all_techniques(self):
        rows = synthetic_view()
        assert {row["technique"] for row in rows} == set(REGISTRY)

    def test_primary_copy_never_uses_sc(self):
        # Section 6: "primary copy and passive replication schemes share
        # one common trait: they do not have an SC phase".
        for cls in REGISTRY.values():
            info = cls.info
            if info.update_location == "primary" or info.name in ("passive", "semi_passive"):
                assert not info.descriptor.uses(SC), info.name

    def test_update_everywhere_needs_sc_except_certification(self):
        # Section 6: "update everywhere replication schemes need the
        # initial SC phase ... The only exception are the Certification
        # based techniques".
        for cls in REGISTRY.values():
            info = cls.info
            if info.update_location == "everywhere" and info.propagation == "eager":
                if info.name == "certification":
                    assert not info.descriptor.uses(SC)
                else:
                    assert info.descriptor.uses(SC), info.name
