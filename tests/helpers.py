"""Shared test fixtures: prewired groups of nodes with the full stack."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.failures import FailureDetector
from repro.net import ConstantLatency, Network, Node, UniformLatency
from repro.groupcomm import ReliableTransport
from repro.sim import Simulator, TraceLog


class GroupHarness:
    """N plain nodes wired with reliable transports and failure detectors.

    Tests attach whatever group-communication layer they exercise on top,
    via the per-node ``transports`` and ``detectors`` maps.  Each node also
    gets a ``delivered`` list that layer upcalls can append to.
    """

    def __init__(
        self,
        n: int,
        seed: int = 1,
        loss_rate: float = 0.0,
        jitter: bool = False,
        fd_interval: float = 2.0,
        fd_timeout: float = 8.0,
        retry_interval: float = 5.0,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.trace = TraceLog(self.sim)
        latency = UniformLatency(0.5, 1.5) if jitter else ConstantLatency(1.0)
        self.net = Network(self.sim, latency=latency, loss_rate=loss_rate)
        self.names: List[str] = [f"n{i}" for i in range(n)]
        self.nodes: Dict[str, Node] = {}
        self.transports: Dict[str, ReliableTransport] = {}
        self.detectors: Dict[str, FailureDetector] = {}
        self.delivered: Dict[str, list] = {}
        for name in self.names:
            node = Node(self.sim, self.net, name)
            self.nodes[name] = node
            self.transports[name] = ReliableTransport(node, retry_interval=retry_interval)
            self.detectors[name] = FailureDetector(
                node, self.names, interval=fd_interval, timeout=fd_timeout
            )
            self.delivered[name] = []

    def sink(self, name: str):
        """An upcall recording ``(origin, mtype, body)`` deliveries."""
        def deliver(origin: str, mtype: str, body: dict) -> None:
            self.delivered[name].append((origin, mtype, body))
        return deliver

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def alive(self) -> List[str]:
        return [n for n in self.names if not self.nodes[n].crashed]
