"""Tests for the simulation-time trace log."""

from repro.sim import Simulator, TraceLog


class TestTraceLog:
    def test_records_carry_sim_time(self):
        sim = Simulator()
        trace = TraceLog(sim)
        sim.schedule(5.0, lambda: trace.record("cat", "src", value=1))
        sim.run()
        assert trace.events[0].time == 5.0

    def test_record_without_sim_defaults_to_zero(self):
        trace = TraceLog()
        event = trace.record("cat", "src")
        assert event.time == 0.0

    def test_select_filters_by_category_source_and_payload(self):
        trace = TraceLog()
        trace.record("phase", "r0", request="a", phase="RE")
        trace.record("phase", "r1", request="a", phase="EX")
        trace.record("message", "r0", request="b")
        assert len(trace.select(category="phase")) == 2
        assert len(trace.select(source="r0")) == 2
        assert len(trace.select(category="phase", request="a", phase="EX")) == 1

    def test_count_matches_select(self):
        trace = TraceLog()
        for i in range(4):
            trace.record("tick", "t", i=i)
        assert trace.count("tick") == 4
        assert trace.count("tick", i=2) == 1

    def test_subscribers_see_new_events(self):
        trace = TraceLog()
        seen = []
        trace.subscribe(seen.append)
        trace.record("cat", "src")
        assert len(seen) == 1

    def test_clear_keeps_subscribers(self):
        trace = TraceLog()
        seen = []
        trace.subscribe(seen.append)
        trace.record("cat", "src")
        trace.clear()
        assert len(trace) == 0
        trace.record("cat", "src")
        assert len(seen) == 2

    def test_dump_limits_output(self):
        trace = TraceLog()
        for i in range(10):
            trace.record("cat", "src", i=i)
        assert len(trace.dump(limit=3).splitlines()) == 3

    def test_iteration_in_order(self):
        trace = TraceLog()
        for i in range(3):
            trace.record("cat", "src", i=i)
        assert [e.data["i"] for e in trace] == [0, 1, 2]
