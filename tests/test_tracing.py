"""Tests for the simulation-time trace log."""

import pytest

from repro.sim import Simulator, TraceLog


class TestTraceLog:
    def test_records_carry_sim_time(self):
        sim = Simulator()
        trace = TraceLog(sim)
        sim.schedule(5.0, lambda: trace.record("cat", "src", value=1))
        sim.run()
        assert trace.events[0].time == 5.0

    def test_record_without_sim_defaults_to_zero(self):
        trace = TraceLog()
        event = trace.record("cat", "src")
        assert event.time == 0.0

    def test_select_filters_by_category_source_and_payload(self):
        trace = TraceLog()
        trace.record("phase", "r0", request="a", phase="RE")
        trace.record("phase", "r1", request="a", phase="EX")
        trace.record("message", "r0", request="b")
        assert len(trace.select(category="phase")) == 2
        assert len(trace.select(source="r0")) == 2
        assert len(trace.select(category="phase", request="a", phase="EX")) == 1

    def test_count_matches_select(self):
        trace = TraceLog()
        for i in range(4):
            trace.record("tick", "t", i=i)
        assert trace.count("tick") == 4
        assert trace.count("tick", i=2) == 1

    def test_subscribers_see_new_events(self):
        trace = TraceLog()
        seen = []
        trace.subscribe(seen.append)
        trace.record("cat", "src")
        assert len(seen) == 1

    def test_clear_keeps_subscribers(self):
        trace = TraceLog()
        seen = []
        trace.subscribe(seen.append)
        trace.record("cat", "src")
        trace.clear()
        assert len(trace) == 0
        trace.record("cat", "src")
        assert len(seen) == 2

    def test_dump_limits_output(self):
        trace = TraceLog()
        for i in range(10):
            trace.record("cat", "src", i=i)
        assert len(trace.dump(limit=3).splitlines()) == 3

    def test_iteration_in_order(self):
        trace = TraceLog()
        for i in range(3):
            trace.record("cat", "src", i=i)
        assert [e.data["i"] for e in trace] == [0, 1, 2]


class TestRingBuffer:
    def test_unbounded_by_default(self):
        trace = TraceLog()
        for i in range(100):
            trace.record("cat", "src", i=i)
        assert len(trace) == 100
        assert trace.dropped_events == 0

    def test_bound_discards_oldest(self):
        trace = TraceLog(max_events=5)
        for i in range(12):
            trace.record("cat", "src", i=i)
        assert len(trace) == 5
        assert [e.data["i"] for e in trace] == [7, 8, 9, 10, 11]
        assert trace.dropped_events == 7

    def test_bound_applies_to_queries(self):
        trace = TraceLog(max_events=3)
        for i in range(6):
            trace.record("cat", "src", i=i)
        assert trace.count("cat") == 3
        assert len(trace.dump().splitlines()) == 3
        assert len(trace.dump(limit=2).splitlines()) == 2

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(max_events=0)


class TestSubscriberIsolation:
    def test_raising_subscriber_does_not_corrupt_log(self):
        trace = TraceLog()

        def broken(_event):
            raise RuntimeError("observer bug")

        seen = []
        trace.subscribe(broken)
        trace.subscribe(seen.append)
        event = trace.record("cat", "src")
        # The event made it into the log and to the healthy subscriber.
        assert trace.events == [event]
        assert seen == [event]
        # The broken subscriber was detached and its error recorded.
        assert len(trace.subscriber_errors) == 1
        trace.record("cat", "src")
        assert len(trace.subscriber_errors) == 1  # not called again
        assert len(seen) == 2
