"""Tests for interactive transaction sessions (Section 5's model)."""

import pytest

from repro import Operation, ReplicatedSystem
from repro.errors import ReplicationError, TransactionAborted


def run(sim, gen):
    handle = sim.spawn(gen)
    sim.run_until_done(handle)
    return handle.result


@pytest.fixture(params=["eager_primary", "eager_ue_locking"])
def system(request):
    return ReplicatedSystem(request.param, replicas=3, seed=1)


class TestSessionLifecycle:
    def test_read_modify_write_with_client_pauses(self, system):
        """Operations issued one at a time with think time in between —
        the Section 5 model the stored-procedure shape cannot express."""
        session = system.client(0).session()

        def work():
            yield session.begin()
            balance = yield session.read("balance")
            assert balance is None
            yield system.sim.timeout(15.0)          # client-side thinking
            yield session.write("balance", 100)
            yield system.sim.timeout(15.0)
            new_balance = yield session.update("balance", "add", -30)
            assert new_balance == 70
            return (yield session.commit())

        assert run(system.sim, work()) is True
        system.settle(200)
        for name in system.replica_names:
            assert system.store_of(name).read("balance") == 70

    def test_abort_discards_everything_everywhere(self, system):
        session = system.client(0).session()

        def work():
            yield session.begin()
            yield session.write("x", "doomed")
            yield session.abort()
            return True

        run(system.sim, work())
        system.settle(200)
        for name in system.replica_names:
            assert system.store_of(name).read("x") is None
            assert system.replicas[name].tm.locks.holders_of("x") == {}

    def test_operations_after_commit_rejected(self, system):
        session = system.client(0).session()

        def work():
            yield session.begin()
            yield session.write("x", 1)
            yield session.commit()
            try:
                yield session.read("x")
            except TransactionAborted:
                return "rejected"

        assert run(system.sim, work()) == "rejected"

    def test_commit_without_begin_is_false(self, system):
        session = system.client(0).session()

        def work():
            return (yield session.commit())

        assert run(system.sim, work()) is False

    def test_uncommitted_writes_invisible_to_others(self, system):
        session = system.client(0).session()
        snapshots = {}

        def work():
            yield session.begin()
            yield session.write("x", "pending")
            snapshots["during"] = system.store_of("r1").read("x")
            yield session.commit()
            yield system.sim.timeout(50.0)
            snapshots["after"] = system.store_of("r1").read("x")

        run(system.sim, work())
        assert snapshots["during"] is None, "no dirty data at other sites"
        assert snapshots["after"] == "pending"


class TestSessionConflicts:
    def test_two_sessions_serialise_on_conflicting_item(self, system):
        s1 = system.client(0).session()
        s2 = system.client(0).session()
        order = []

        def first():
            yield s1.begin()
            yield s1.update("x", "add", 1)
            yield system.sim.timeout(30.0)     # hold the lock a while
            committed = yield s1.commit()
            order.append(("first", system.sim.now, committed))

        def second():
            yield system.sim.timeout(5.0)
            yield s2.begin()
            yield s2.update("x", "add", 1)     # blocks behind s1's lock
            committed = yield s2.commit()
            order.append(("second", system.sim.now, committed))

        h1 = system.sim.spawn(first())
        h2 = system.sim.spawn(second())
        system.sim.run_until_done(system.sim.all_of([h1, h2]))
        system.settle(200)
        assert order[0][0] == "first", "s2 must wait for s1's lock"
        assert all(committed for _n, _t, committed in order)
        assert system.store_of("r0").read("x") == 2

    def test_deadlocked_sessions_one_aborts(self):
        system = ReplicatedSystem(
            "eager_ue_locking", replicas=2, clients=2, seed=2,
            config={"lock_timeout": 20.0},
        )
        s1 = system.client(0).session()
        s2 = system.client(1).session()
        outcomes = {}

        def worker(name, session, first, second):
            yield session.begin()
            try:
                yield session.update(first, "add", 1)
                yield system.sim.timeout(5.0)
                yield session.update(second, "add", 1)
                outcomes[name] = (yield session.commit())
            except TransactionAborted:
                outcomes[name] = False

        h1 = system.sim.spawn(worker("s1", s1, "a", "b"))
        h2 = system.sim.spawn(worker("s2", s2, "b", "a"))
        system.sim.run_until_done(system.sim.all_of([h1, h2]))
        system.settle(300)
        assert sorted(outcomes.values()) in ([False, True], [False, False])
        assert system.converged()


class TestSessionSupportMatrix:
    def test_unsupported_protocols_raise(self):
        system = ReplicatedSystem("active", replicas=3, seed=1)
        with pytest.raises(ReplicationError):
            system.client(0).session()

    def test_primary_sessions_target_the_directory_primary(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=1)
        session = system.client(0).session()
        assert session.server == "r0"
        system.directory.set_primary("r1")
        assert system.client(0).session().server == "r1"

    def test_locking_sessions_target_the_home_replica(self):
        system = ReplicatedSystem("eager_ue_locking", replicas=3, clients=2, seed=1)
        assert system.client(1).session().server == "r1"
