"""The resilient client edge and the chaos campaign engine.

Covers the robustness layer bottom-up: named simulator streams (the
determinism substrate), the retry policy envelope, the circuit-breaker
state machine, the call timeout-guard cancellation, the resilient client's
outcome taxonomy, and the campaign engine's verdicts and determinism.
The full 5x10 campaign matrix runs under ``make chaos``; these tests pin
the mechanics it is built from.
"""

import dataclasses
import random

import pytest

from repro import Operation, ReplicatedSystem
from repro.analysis import counter_check
from repro.errors import NetworkError
from repro.net import ConstantLatency, Network, Node
from repro.resilience import (
    CAMPAIGNS,
    ChaosCampaign,
    CircuitBreaker,
    FaultAction,
    ResilientClient,
    RetryPolicy,
    run_campaign,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Named streams: the determinism substrate under retry jitter and faults
# ---------------------------------------------------------------------------

class TestNamedStreams:
    def test_same_seed_same_name_same_draws(self):
        a = Simulator(seed=42).stream("resilience.rc0")
        b = Simulator(seed=42).stream("resilience.rc0")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_are_cached_per_name(self):
        sim = Simulator(seed=1)
        assert sim.stream("x") is sim.stream("x")
        assert sim.stream("x") is not sim.stream("y")

    def test_stream_draws_do_not_perturb_main_rng(self):
        plain = Simulator(seed=7)
        mixed = Simulator(seed=7)
        for _ in range(50):
            mixed.stream("failures.injector").random()
        assert [plain.rng.random() for _ in range(10)] == [
            mixed.rng.random() for _ in range(10)
        ]

    def test_distinct_names_give_independent_sequences(self):
        sim = Simulator(seed=3)
        a = [sim.stream("a").random() for _ in range(5)]
        b = [sim.stream("b").random() for _ in range(5)]
        assert a != b


# ---------------------------------------------------------------------------
# Retry policy: pure data, bounded envelope
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base=5.0, multiplier=2.0, cap=60.0, jitter=0.0)
        rng = random.Random(0)
        assert [policy.backoff(n, rng) for n in range(1, 6)] == [
            5.0, 10.0, 20.0, 40.0, 60.0
        ]

    def test_jitter_stays_inside_envelope(self):
        policy = RetryPolicy(base=10.0, multiplier=1.0, cap=10.0, jitter=0.5)
        rng = random.Random(1)
        for attempt in range(1, 20):
            backoff = policy.backoff(attempt, rng)
            assert 5.0 <= backoff <= 10.0

    def test_same_stream_same_schedule(self):
        policy = RetryPolicy()
        a = [policy.backoff(n, random.Random(9)) for n in range(1, 8)]
        b = [policy.backoff(n, random.Random(9)) for n in range(1, 8)]
        assert a == b

    @pytest.mark.parametrize("kwargs", [
        {"base": 0.0},
        {"multiplier": 0.5},
        {"jitter": 1.5},
        {"max_attempts": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# ---------------------------------------------------------------------------
# Circuit breaker: closed -> open -> half-open -> closed
# ---------------------------------------------------------------------------

def advance(sim, delay):
    sim.run(until=sim.now + delay)


class TestCircuitBreaker:
    def test_trips_after_threshold_and_refuses(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=3, reset_timeout=60.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        advance(sim, 10.0)
        assert breaker.allow()           # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()       # second request while probe in flight

    def test_probe_success_closes_probe_failure_reopens(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure()
        advance(sim, 10.0)
        assert breaker.allow()
        breaker.record_failure()         # probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.reopens_in() == pytest.approx(10.0)
        advance(sim, 10.0)
        assert breaker.allow()
        breaker.record_success()         # probe succeeded
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_success_resets_consecutive_failures(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=3, reset_timeout=60.0)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_transitions_are_recorded_for_evidence(self):
        sim = Simulator(seed=0)
        breaker = CircuitBreaker(sim, failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        advance(sim, 5.0)
        breaker.allow()
        breaker.record_success()
        assert [state for _, state in breaker.transitions] == [
            "open", "half_open", "closed"
        ]


# ---------------------------------------------------------------------------
# Call timeout guard: no dead timers queuing behind resolved calls
# ---------------------------------------------------------------------------

class TestCallTimeoutGuard:
    def _pair(self):
        sim = Simulator(seed=0)
        net = Network(sim, latency=ConstantLatency(1.0))
        a, b = Node(sim, net, "a"), Node(sim, net, "b")
        return sim, a, b

    def test_reply_cancels_the_guard_timer(self):
        sim, a, b = self._pair()
        b.on("ping", lambda msg: b.reply(msg, ok=True))
        future = a.call("b", "ping", timeout=500.0)
        sim.run(until=10.0)
        assert future.done and future.result["ok"]
        # The 500-unit guard was cancelled at reply time and now sits in
        # the queue as a dead event (discarded without firing when the run
        # reaches it) instead of keeping the clock hostage until t=500.
        assert sim.dead_events >= 1
        sim.run()
        assert sim.now < 500.0

    def test_abandoned_call_cancels_guard_and_pending_entry(self):
        sim, a, b = self._pair()
        b.on("ping", lambda msg: None)   # never replies
        future = a.call("b", "ping", timeout=500.0)
        advance(sim, 5.0)
        assert not future.done
        assert future.cancel("caller abandoned the retry attempt")
        # Cleanup ran: the reply-correlation entry is gone and the guard
        # timer is dead, so a retrying caller leaks nothing per attempt.
        assert not a._pending_calls
        assert sim.dead_events >= 1


# ---------------------------------------------------------------------------
# Fault injector: schedule-time validation, deterministic random schedules
# ---------------------------------------------------------------------------

class TestInjectorValidation:
    def _system(self, seed=0):
        return ReplicatedSystem("active", replicas=3, clients=0, seed=seed)

    def test_unknown_node_rejected_at_schedule_time(self):
        system = self._system()
        with pytest.raises(NetworkError):
            system.injector.crash_at(10.0, "r9")
        with pytest.raises(NetworkError):
            system.injector.partition_at(10.0, ["r0"], ["r1", "typo"])
        with pytest.raises(NetworkError):
            system.injector.drop_at(10.0, "nope", 0.5)

    def test_fault_values_validated_at_schedule_time(self):
        system = self._system()
        with pytest.raises(ValueError):
            system.injector.fault_at(5.0, "r0", "explode", 1.0)
        with pytest.raises(ValueError):
            system.injector.drop_at(5.0, "r0", 1.0)      # must be < 1
        with pytest.raises(ValueError):
            system.injector.slow_at(5.0, "r0", 0.5)      # must be >= 1

    def test_random_crashes_deterministic_per_seed(self):
        schedules = []
        for _ in range(2):
            system = self._system(seed=13)
            schedules.append(
                system.injector.random_crashes(
                    ["r0", "r1", "r2"], 2, (10.0, 100.0)
                )
            )
        assert schedules[0] == schedules[1]
        assert len(schedules[0]) == 2

    def test_random_crashes_do_not_perturb_workload_rng(self):
        plain = self._system(seed=13)
        chaotic = self._system(seed=13)
        chaotic.injector.random_crashes(["r0", "r1"], 1, (10.0, 50.0))
        assert [plain.sim.rng.random() for _ in range(5)] == [
            chaotic.sim.rng.random() for _ in range(5)
        ]


# ---------------------------------------------------------------------------
# Resilient client: outcome taxonomy and exactly-once retries
# ---------------------------------------------------------------------------

class TestResilientClient:
    def test_clean_run_commits_without_retries(self):
        system = ReplicatedSystem("active", replicas=3, clients=0, seed=1)
        edge = ResilientClient(system, index=0)
        future = edge.submit(Operation.update("x", "add", 1))
        result = system.sim.run_until_done(future)
        assert result.committed and result.retries == 0
        system.settle(300)
        for name in system.replica_names:
            assert system.store_of(name).read("x") == 1

    def test_retryable_classification(self):
        system = ReplicatedSystem("active", replicas=3, clients=0, seed=1)
        edge = ResilientClient(system, index=0)
        assert edge._retryable("not primary (primary is r1)")
        assert edge._retryable("deadline exceeded at server")
        assert not edge._retryable("lock timeout")
        assert not edge._retryable("certification conflict on ['x']")

    def test_deadline_budget_yields_indeterminate(self):
        system = ReplicatedSystem("active", replicas=3, clients=0, seed=2)
        edge = ResilientClient(
            system, index=0, request_timeout=20.0, deadline=120.0
        )
        # Cut the client off from every replica before it sends.
        system.injector.partition_at(
            1.0, [edge.name], list(system.replica_names)
        )

        def go():
            yield system.sim.timeout(5.0)
            return (yield edge.submit(Operation.update("x", "add", 1)))

        handle = system.sim.spawn(go())
        result = system.sim.run_until_done(handle)
        assert not result.committed
        assert result.reason == "deadline exceeded"
        # The budget is honoured: the edge gave up at its deadline.
        assert result.completed_at - result.submitted_at == pytest.approx(
            120.0, abs=1.0
        )

    def test_retries_reuse_the_same_request_id(self):
        system = ReplicatedSystem("active", replicas=3, clients=0, seed=3)
        edge = ResilientClient(system, index=0, request_timeout=15.0)
        # 60% loss everywhere: attempts go silent, the edge must retry.
        for replica in system.replica_names:
            system.injector.drop_at(0.0, replica, 0.6, duration=80.0)
        future = edge.submit(Operation.update("x", "add", 1))
        result = system.sim.run_until_done(future)
        assert result.committed
        assert result.retries > 0, "the scenario must actually provoke retries"
        system.settle(300)
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        assert not counter_check([result], stores, strict=False)


# ---------------------------------------------------------------------------
# Campaign engine: composition, verdicts, determinism
# ---------------------------------------------------------------------------

class TestCampaignEngine:
    def test_at_least_four_composed_campaigns_ship(self):
        assert len(CAMPAIGNS) >= 4
        for campaign in CAMPAIGNS.values():
            assert campaign.actions, campaign.name
            assert campaign.horizon() > 0.0

    def test_schedule_validates_nodes_immediately(self):
        system = ReplicatedSystem("active", replicas=3, clients=0, seed=0)
        bogus = ChaosCampaign(
            name="bogus", description="",
            actions=(FaultAction("crash", at=10.0, node="r9"),),
        )
        with pytest.raises(NetworkError):
            bogus.schedule(system.injector)

    def test_strong_cell_passes_its_guarantee(self):
        report = run_campaign(
            "active", CAMPAIGNS["group_loss_under_load"], observe=False
        )
        assert report.passed, report.summary()
        assert report.consistency == "strong"
        assert report.indeterminate == 0 and not report.violations

    def test_lazy_cell_converges_after_heal(self):
        report = run_campaign(
            "lazy_ue", CAMPAIGNS["partition_during_view_change"], observe=False
        )
        assert report.passed, report.summary()
        assert report.consistency != "strong"
        assert report.converged

    def test_same_seed_same_report(self):
        cells = [
            run_campaign(
                "eager_primary", CAMPAIGNS["primary_crash_mid_2pc"],
                seed=0, observe=False,
            )
            for _ in range(2)
        ]
        assert dataclasses.asdict(cells[0]) == dataclasses.asdict(cells[1])
