"""The shipped examples must run clean end-to-end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    ("quickstart.py", []),
    ("quickstart.py", ["certification"]),
    ("bank_failover.py", []),
    ("mobile_lazy_sync.py", []),
    ("interactive_atm.py", []),
]


@pytest.mark.parametrize("script,args", EXAMPLES)
def test_example_runs_clean(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    completed = subprocess.run(
        [sys.executable, path] + args,
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they do"


def test_paper_figures_renders_all_sixteen():
    path = os.path.join(EXAMPLES_DIR, "paper_figures.py")
    completed = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for figure in range(1, 17):
        assert f"Figure {figure}" in completed.stdout, f"figure {figure} missing"


def test_cli_list_and_run():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True, text=True, timeout=120,
    )
    assert completed.returncode == 0
    assert "certification" in completed.stdout
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "run", "lazy_ue", "--requests", "3"],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0
    assert "Lazy update everywhere" in completed.stdout
