"""Integration tests for the distributed-systems replication techniques."""

import pytest

from repro import AC, END, EX, RE, SC, Operation, ReplicatedSystem
from repro.analysis import check_linearizable, history_from_results


def drive_updates(system, n, gap=25.0, item="x", client=0, func="add", arg=1):
    def loop():
        results = []
        for _ in range(n):
            result = yield system.client(client).submit(
                [Operation.update(item, func, arg)]
            )
            results.append(result)
            yield system.sim.timeout(gap)
        return results
    handle = system.sim.spawn(loop())
    system.sim.run_until_done(handle)
    return handle.result


class TestActive:
    def test_all_replicas_execute_and_converge(self):
        system = ReplicatedSystem("active", replicas=3, seed=1)
        result = system.execute([Operation.update("x", "add", 10)])
        assert result.committed and result.value == 10
        system.settle(100)
        assert all(system.store_of(n).read("x") == 10 for n in system.replica_names)

    def test_client_takes_first_of_n_responses(self):
        system = ReplicatedSystem("active", replicas=3, seed=1)
        result = system.execute([Operation.read("x")])
        assert result.committed
        assert len(system.client(0).results) == 1, "duplicate responses must be ignored"

    def test_replica_crash_is_transparent(self):
        system = ReplicatedSystem("active", replicas=3, seed=2,
                                  fd_interval=2.0, fd_timeout=8.0)
        system.injector.crash_at(40.0, "r0")
        results = drive_updates(system, 5)
        assert all(r.committed for r in results)
        assert all(r.retries == 0 for r in results), "failures must be masked"
        system.settle(400)
        live = system.live_replicas()
        assert all(system.store_of(n).read("x") == 5 for n in live)

    def test_phase_sequence_matches_figure_2(self):
        system = ReplicatedSystem("active", replicas=3, seed=1)
        result = system.execute([Operation.write("x", 1)])
        system.settle(100)
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        assert observed == [RE, SC, EX, END]
        assert system.tracer.mechanisms_used(result.request_id)[SC] == "abcast"

    def test_nondeterminism_genuinely_breaks_active_replication(self):
        # The paper's determinism requirement made real: a non-
        # deterministic operation diverges the replicas.
        system = ReplicatedSystem("active", replicas=3, seed=3)
        result = system.execute([Operation.update("x", "random_token")])
        assert result.committed
        system.settle(100)
        values = {system.store_of(n).read("x") for n in system.replica_names}
        assert len(values) > 1, "expected divergence under non-determinism"

    def test_sequencer_variant_works(self):
        system = ReplicatedSystem("active", replicas=4, seed=1,
                                  config={"abcast": "sequencer"})
        results = drive_updates(system, 4, gap=10.0)
        assert all(r.committed for r in results)
        system.settle(100)
        assert system.converged()

    def test_linearizable_history(self):
        system = ReplicatedSystem("active", replicas=3, clients=2, seed=5)
        def client_loop(i):
            for _ in range(4):
                yield system.client(i).submit([Operation.update("x", "add", 1)])
                yield system.sim.timeout(3.0)
        h1 = system.sim.spawn(client_loop(0))
        h2 = system.sim.spawn(client_loop(1))
        system.sim.run_until_done(system.sim.all_of([h1, h2]))
        results = system.client(0).results + system.client(1).results
        history = history_from_results(results)
        assert check_linearizable(history, initial=None).ok


class TestPassive:
    def test_primary_executes_backups_apply(self):
        system = ReplicatedSystem("passive", replicas=3, seed=1)
        result = system.execute([Operation.update("x", "add", 7)])
        assert result.committed and result.server == "r0"
        system.settle(100)
        for name in system.replica_names:
            assert system.store_of(name).read("x") == 7

    def test_nondeterminism_is_safe(self):
        # Only the primary executes; backups apply after-images.
        system = ReplicatedSystem("passive", replicas=3, seed=2)
        result = system.execute([Operation.update("x", "random_token")])
        assert result.committed
        system.settle(100)
        values = {system.store_of(n).read("x") for n in system.replica_names}
        assert len(values) == 1, "backups must hold the primary's value"

    def test_phase_sequence_matches_figure_3(self):
        system = ReplicatedSystem("passive", replicas=3, seed=1)
        result = system.execute([Operation.write("x", 1)])
        system.settle(50)
        primary_seq = system.tracer.observed_sequence(result.request_id, source="r0")
        assert primary_seq == [RE, EX, AC, END]
        backup_seq = system.tracer.observed_sequence(result.request_id, source="r1")
        assert backup_seq == [AC], "backups only participate in agreement"

    def test_primary_failover_promotes_next_member(self):
        system = ReplicatedSystem("passive", replicas=3, seed=3,
                                  fd_interval=2.0, fd_timeout=8.0)
        system.injector.crash_at(60.0, "r0")
        results = drive_updates(system, 6, gap=30.0)
        assert all(r.committed for r in results)
        assert {r.server for r in results} == {"r0", "r1"}
        assert system.directory.primary == "r1"
        system.settle(300)
        for name in system.live_replicas():
            assert system.store_of(name).read("x") == 6

    def test_failover_is_not_transparent(self):
        # Crash the primary exactly while a request is in flight: the
        # client must observe at least one retry (Figure 5's placement of
        # passive replication).
        system = ReplicatedSystem("passive", replicas=3, seed=4,
                                  fd_interval=2.0, fd_timeout=6.0,
                                  client_timeout=40.0)
        system.injector.crash_at(30.5, "r0")
        def loop():
            yield system.sim.timeout(30.0)
            return (yield system.client(0).submit([Operation.update("x", "add", 1)]))
        handle = system.sim.spawn(loop())
        result = system.sim.run_until_done(handle)
        assert result.committed
        assert result.retries >= 1
        assert result.server == "r1"

    def test_exactly_once_across_failover(self):
        # Even when the primary dies right after executing, re-submission
        # must not double-apply (result cache travels with the vscast).
        for crash_at in (30.5, 31.5, 32.5):
            system = ReplicatedSystem("passive", replicas=3, seed=5,
                                      fd_interval=2.0, fd_timeout=6.0,
                                      client_timeout=40.0)
            system.injector.crash_at(crash_at, "r0")
            def loop():
                yield system.sim.timeout(30.0)
                first = yield system.client(0).submit([Operation.update("x", "add", 1)])
                return first
            handle = system.sim.spawn(loop())
            result = system.sim.run_until_done(handle)
            system.settle(400)
            assert result.committed
            survivors = system.live_replicas()
            values = {system.store_of(n).read("x") for n in survivors}
            assert values == {1}, f"crash_at={crash_at}: {values}"


class TestSemiActive:
    def test_deterministic_requests_run_everywhere(self):
        system = ReplicatedSystem("semi_active", replicas=3, seed=1)
        result = system.execute([Operation.update("x", "add", 4)])
        assert result.committed and result.value == 4
        system.settle(100)
        assert system.converged()

    def test_leader_decides_nondeterministic_choice(self):
        system = ReplicatedSystem("semi_active", replicas=3, seed=2)
        result = system.execute([Operation.update("x", "random_token")])
        assert result.committed
        system.settle(200)
        values = {system.store_of(n).read("x") for n in system.replica_names}
        assert len(values) == 1, "leader's choice must reach all followers"

    def test_phase_sequence_includes_ac_per_choice(self):
        system = ReplicatedSystem("semi_active", replicas=3, seed=3)
        result = system.execute(
            [Operation.update("x", "random_token"), Operation.update("y", "random_token")]
        )
        system.settle(200)
        observed = system.tracer.observed_sequence(result.request_id, source="r0")
        assert observed == [RE, SC, EX, AC, EX, AC, END]
        collapsed = system.tracer.observed_sequence(
            result.request_id, source="r0", collapse=True
        )
        assert collapsed == [RE, SC, EX, AC, END]

    def test_leader_crash_mid_choice_recovers(self):
        system = ReplicatedSystem("semi_active", replicas=3, seed=4,
                                  fd_interval=2.0, fd_timeout=8.0)
        system.injector.crash_at(45.0, "r0")
        results = drive_updates(system, 5, gap=25.0, func="random_token", arg=None)
        assert all(r.committed for r in results)
        system.settle(400)
        live = system.live_replicas()
        digests = {system.store_of(n).values_digest() for n in live}
        assert len(digests) == 1


class TestSemiPassive:
    def test_decides_and_converges(self):
        system = ReplicatedSystem("semi_passive", replicas=3, seed=1)
        result = system.execute([Operation.update("x", "add", 2)])
        assert result.committed and result.value == 2
        system.settle(100)
        assert system.converged()

    def test_only_coordinator_executes_failure_free(self):
        system = ReplicatedSystem("semi_passive", replicas=3, seed=2)
        for _ in range(3):
            system.execute([Operation.update("x", "add", 1)])
        system.settle(100)
        executed = {
            name: system.protocol_at(name).executed_slots()
            for name in system.replica_names
        }
        assert executed["r0"] == 3, executed
        assert executed["r1"] == 0 and executed["r2"] == 0

    def test_crash_transparent_to_client(self):
        system = ReplicatedSystem("semi_passive", replicas=3, seed=3,
                                  fd_interval=2.0, fd_timeout=6.0)
        system.injector.crash_at(40.0, "r0")
        results = drive_updates(system, 5)
        assert all(r.committed and r.retries == 0 for r in results)
        system.settle(400)
        live = system.live_replicas()
        assert all(system.store_of(n).read("x") == 5 for n in live)

    def test_nondeterminism_safe_like_passive(self):
        system = ReplicatedSystem("semi_passive", replicas=3, seed=4)
        result = system.execute([Operation.update("x", "random_token")])
        assert result.committed
        system.settle(200)
        values = {system.store_of(n).read("x") for n in system.replica_names}
        assert len(values) == 1
