"""Tests for reliable, FIFO and causal broadcast."""

import pytest
from helpers import GroupHarness
from hypothesis import given, settings, strategies as st

from repro.groupcomm import CausalBroadcast, FifoBroadcast, ReliableBroadcast, VectorClock


def attach_rb(h, relay=True):
    layers = {}
    for name in h.names:
        layers[name] = ReliableBroadcast(
            h.nodes[name], h.transports[name], h.names, h.sink(name), relay=relay
        )
    return layers


def attach_fifo(h):
    return {
        name: FifoBroadcast(h.nodes[name], h.transports[name], h.names, h.sink(name))
        for name in h.names
    }


def attach_causal(h):
    return {
        name: CausalBroadcast(h.nodes[name], h.transports[name], h.names, h.sink(name))
        for name in h.names
    }


class TestReliableBroadcast:
    def test_everyone_delivers_including_sender(self):
        h = GroupHarness(4)
        rb = attach_rb(h)
        rb["n0"].broadcast("evt", k=1)
        h.run(until=100)
        for name in h.names:
            assert h.delivered[name] == [("n0", "evt", {"k": 1})]

    def test_no_duplicate_delivery_despite_relay(self):
        h = GroupHarness(5)
        rb = attach_rb(h)
        for i in range(5):
            rb["n2"].broadcast("evt", i=i)
        h.run(until=200)
        for name in h.names:
            assert len(h.delivered[name]) == 5

    def test_agreement_when_sender_crashes_after_broadcast(self):
        # The sender crashes just after handing its broadcast to the
        # network, under loss.  Agreement: all surviving members must
        # uniformly deliver or uniformly not deliver.
        outcomes = set()
        for seed in range(8):
            h = GroupHarness(4, seed=seed, loss_rate=0.3, retry_interval=2.0)
            rb = attach_rb(h)
            rb["n0"].broadcast("evt")
            h.sim.schedule(0.1, h.nodes["n0"].crash)
            h.run(until=3000)
            got = {name: len(h.delivered[name]) for name in h.names if name != "n0"}
            assert len(set(got.values())) == 1, f"non-uniform delivery {got} (seed {seed})"
            outcomes.add(next(iter(got.values())))
        assert outcomes, "no experiment ran"

    def test_delivery_works_with_relay_disabled(self):
        h = GroupHarness(3)
        rb = attach_rb(h, relay=False)
        rb["n1"].broadcast("evt")
        h.run(until=50)
        for name in h.names:
            assert len(h.delivered[name]) == 1

    def test_relay_costs_more_messages(self):
        h1 = GroupHarness(5)
        attach_rb(h1, relay=True)["n0"].broadcast("evt")
        h1.run(until=100)
        with_relay = h1.net.stats.by_type["rt.data"]

        h2 = GroupHarness(5)
        attach_rb(h2, relay=False)["n0"].broadcast("evt")
        h2.run(until=100)
        without_relay = h2.net.stats.by_type["rt.data"]
        assert with_relay > without_relay


class TestFifoBroadcast:
    def test_per_sender_order_preserved(self):
        h = GroupHarness(3, jitter=True, seed=11)
        fifo = attach_fifo(h)
        for i in range(20):
            fifo["n0"].broadcast("evt", seq=i)
        h.run(until=500)
        for name in h.names:
            seqs = [body["seq"] for origin, _, body in h.delivered[name] if origin == "n0"]
            assert seqs == list(range(20))

    def test_interleaved_senders_each_fifo(self):
        h = GroupHarness(3, jitter=True, seed=13)
        fifo = attach_fifo(h)
        for i in range(10):
            fifo["n0"].broadcast("evt", seq=i)
            fifo["n1"].broadcast("evt", seq=i)
        h.run(until=500)
        for name in h.names:
            for origin in ("n0", "n1"):
                seqs = [b["seq"] for o, _, b in h.delivered[name] if o == origin]
                assert seqs == list(range(10))


class TestCausalBroadcast:
    def test_causal_chain_never_inverted(self):
        # n0 broadcasts A; n1, upon delivering A, broadcasts B.
        # No member may deliver B before A.
        for seed in range(6):
            h = GroupHarness(3, jitter=True, seed=seed)
            cb = attach_causal(h)
            replied = []

            def on_deliver_n1(origin, mtype, body, _cb=None):
                h.delivered["n1"].append((origin, mtype, body))
                if mtype == "A" and not replied:
                    replied.append(True)
                    cb["n1"].broadcast("B")

            cb["n1"].deliver = on_deliver_n1
            cb["n0"].broadcast("A")
            h.run(until=300)
            for name in h.names:
                types = [mtype for _, mtype, _ in h.delivered[name]]
                assert types.index("A") < types.index("B"), f"seed {seed}, {name}: {types}"

    def test_own_messages_deliver_in_send_order(self):
        h = GroupHarness(2)
        cb = attach_causal(h)
        cb["n0"].broadcast("evt", i=0)
        cb["n0"].broadcast("evt", i=1)
        h.run(until=100)
        assert [b["i"] for _, _, b in h.delivered["n0"]] == [0, 1]
        assert [b["i"] for _, _, b in h.delivered["n1"]] == [0, 1]

    def test_concurrent_messages_all_delivered(self):
        h = GroupHarness(4, jitter=True, seed=3)
        cb = attach_causal(h)
        for name in h.names:
            cb[name].broadcast("evt", frm=name)
        h.run(until=300)
        for name in h.names:
            assert len(h.delivered[name]) == 4


class TestVectorClock:
    def test_increment_and_get(self):
        vc = VectorClock.zero(["a", "b"]).increment("a")
        assert vc.get("a") == 1 and vc.get("b") == 0

    def test_merge_is_pointwise_max(self):
        x = VectorClock({"a": 3, "b": 1})
        y = VectorClock({"a": 2, "b": 5, "c": 1})
        merged = x.merge(y)
        assert merged.as_dict() == {"a": 3, "b": 5, "c": 1}

    def test_ordering(self):
        low = VectorClock({"a": 1, "b": 1})
        high = VectorClock({"a": 2, "b": 1})
        assert low < high and not high <= low

    def test_concurrency_detection(self):
        x = VectorClock({"a": 2, "b": 0})
        y = VectorClock({"a": 0, "b": 2})
        assert x.concurrent_with(y) and y.concurrent_with(x)

    def test_missing_entries_read_as_zero(self):
        assert VectorClock({}).get("ghost") == 0
        assert VectorClock({"a": 0}) == VectorClock({})

    @given(
        st.dictionaries(st.sampled_from("abcd"), st.integers(0, 5)),
        st.dictionaries(st.sampled_from("abcd"), st.integers(0, 5)),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_is_upper_bound(self, d1, d2):
        x, y = VectorClock(d1), VectorClock(d2)
        merged = x.merge(y)
        assert x <= merged and y <= merged

    @given(
        st.dictionaries(st.sampled_from("abcd"), st.integers(0, 5)),
        st.dictionaries(st.sampled_from("abcd"), st.integers(0, 5)),
        st.dictionaries(st.sampled_from("abcd"), st.integers(0, 5)),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_commutative_associative(self, d1, d2, d3):
        x, y, z = VectorClock(d1), VectorClock(d2), VectorClock(d3)
        assert x.merge(y) == y.merge(x)
        assert x.merge(y).merge(z) == x.merge(y.merge(z))

    @given(st.dictionaries(st.sampled_from("abcd"), st.integers(0, 5)), st.sampled_from("abcd"))
    @settings(max_examples=60, deadline=None)
    def test_increment_strictly_dominates(self, d, member):
        vc = VectorClock(d)
        assert vc < vc.increment(member)
