"""Unit tests for the network fabric and node abstraction."""

import pytest

from repro.errors import NetworkError, NodeCrashed, SimulationError
from repro.net import (
    ConstantLatency,
    Network,
    Node,
    PerLinkLatency,
    UniformLatency,
)
from repro.sim import Simulator, TraceLog


@pytest.fixture
def sim():
    return Simulator(seed=1)


def make_net(sim, **kwargs):
    return Network(sim, latency=kwargs.pop("latency", ConstantLatency(1.0)), **kwargs)


class Echo(Node):
    """Test node recording everything it receives and echoing calls."""

    def __init__(self, sim, network, name):
        super().__init__(sim, network, name)
        self.received = []
        self.on("ping", self._on_ping)
        self.on("note", self._on_note)

    def _on_ping(self, msg):
        self.received.append(msg)
        self.reply(msg, text="pong from " + self.name)

    def _on_note(self, msg):
        self.received.append(msg)


class TestDelivery:
    def test_message_arrives_after_latency(self, sim):
        net = make_net(sim, latency=ConstantLatency(3.0))
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        a.send("b", "note", text="hi")
        sim.run()
        assert len(b.received) == 1
        assert b.received[0]["text"] == "hi"
        assert sim.now == 3.0

    def test_unknown_destination_raises(self, sim):
        net = make_net(sim)
        Echo(sim, net, "a")
        with pytest.raises(NetworkError):
            net.send("a", "ghost", "note")

    def test_duplicate_node_name_rejected(self, sim):
        net = make_net(sim)
        Echo(sim, net, "a")
        with pytest.raises(SimulationError):
            Echo(sim, net, "a")

    def test_missing_handler_is_error(self, sim):
        net = make_net(sim)
        Echo(sim, net, "a")
        Echo(sim, net, "b")
        net.send("a", "b", "mystery")
        with pytest.raises(SimulationError):
            sim.run()

    def test_default_handler_catches_unmatched(self, sim):
        net = make_net(sim)
        a = Echo(sim, net, "a")
        b = Echo(sim, net, "b")
        caught = []
        b.on_default(caught.append)
        a.send("b", "mystery", n=1)
        sim.run()
        assert len(caught) == 1 and caught[0]["n"] == 1

    def test_fifo_link_preserves_order_with_random_latency(self, sim):
        net = make_net(sim, latency=UniformLatency(0.1, 10.0), fifo=True)
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        for i in range(50):
            a.send("b", "note", seq=i)
        sim.run()
        assert [m["seq"] for m in b.received] == list(range(50))

    def test_non_fifo_link_can_reorder(self):
        reordered = False
        for seed in range(20):
            sim = Simulator(seed=seed)
            net = Network(sim, latency=UniformLatency(0.1, 10.0), fifo=False)
            a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
            for i in range(20):
                a.send("b", "note", seq=i)
            sim.run()
            if [m["seq"] for m in b.received] != list(range(20)):
                reordered = True
                break
        assert reordered, "no reordering observed across 20 seeds"

    def test_broadcast_reaches_all(self, sim):
        net = make_net(sim)
        Echo(sim, net, "a")
        others = [Echo(sim, net, f"n{i}") for i in range(3)]
        net.broadcast("a", [n.name for n in others], "note", payload={"x": 1})
        sim.run()
        assert all(len(n.received) == 1 for n in others)

    def test_stats_count_by_type(self, sim):
        net = make_net(sim)
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        a.send("b", "note", text="1")
        a.send("b", "note", text="2")
        sim.run()
        assert net.stats.by_type["note"] == 2
        assert net.stats.messages_matching("no") == 2
        assert net.stats.delivered == 2


class TestLoss:
    def test_loss_rate_drops_messages(self):
        sim = Simulator(seed=3)
        net = Network(sim, latency=ConstantLatency(1.0), loss_rate=0.5)
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        for i in range(200):
            a.send("b", "note", seq=i)
        sim.run()
        assert 0 < len(b.received) < 200
        assert net.stats.dropped_loss == 200 - len(b.received)

    def test_invalid_loss_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            Network(sim, loss_rate=1.0)


class TestPartitions:
    def test_cross_partition_messages_dropped(self, sim):
        net = make_net(sim)
        a, b, c = Echo(sim, net, "a"), Echo(sim, net, "b"), Echo(sim, net, "c")
        net.partition(["a"], ["b", "c"])
        a.send("b", "note")
        b.send("c", "note")
        sim.run()
        assert len(b.received) == 0
        assert len(c.received) == 1

    def test_heal_restores_connectivity(self, sim):
        net = make_net(sim)
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        net.partition(["a"], ["b"])
        a.send("b", "note")
        sim.run()
        net.heal()
        a.send("b", "note")
        sim.run()
        assert len(b.received) == 1

    def test_unlisted_nodes_form_residual_group(self, sim):
        net = make_net(sim)
        a, b, c = Echo(sim, net, "a"), Echo(sim, net, "b"), Echo(sim, net, "c")
        net.partition(["a"])  # b and c implicitly together
        b.send("c", "note")
        a.send("c", "note")
        sim.run()
        assert len(c.received) == 1

    def test_partition_cuts_in_flight_messages(self, sim):
        net = make_net(sim, latency=ConstantLatency(5.0))
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        a.send("b", "note")
        sim.schedule(1.0, net.partition, ["a"], ["b"])
        sim.run()
        assert len(b.received) == 0


class TestRpc:
    def test_call_resolves_with_reply(self, sim):
        net = make_net(sim)
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        def proc():
            reply = yield a.call("b", "ping")
            return reply["text"]
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == "pong from b"

    def test_call_timeout_fires(self, sim):
        net = make_net(sim)
        a = Echo(sim, net, "a")
        b = Echo(sim, net, "b")
        b.crash()
        def proc():
            try:
                yield a.call("b", "ping", timeout=10.0)
            except TimeoutError:
                return "timed out at %.0f" % sim.now
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == "timed out at 10"

    def test_reply_after_timeout_is_ignored(self, sim):
        net = make_net(sim, latency=ConstantLatency(5.0))
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        def proc():
            try:
                yield a.call("b", "ping", timeout=1.0)
            except TimeoutError:
                pass
            yield sim.timeout(100.0)
            return "done"
        handle = sim.spawn(proc())
        sim.run()
        assert handle.result == "done"


class TestCrash:
    def test_crashed_node_does_not_receive(self, sim):
        net = make_net(sim)
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        b.crash()
        a.send("b", "note")
        sim.run()
        assert b.received == []

    def test_crashed_node_does_not_send(self, sim):
        net = make_net(sim)
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        a.crash()
        a.send("b", "note")
        sim.run()
        assert b.received == []

    def test_in_flight_message_to_crashing_node_dropped(self, sim):
        net = make_net(sim, latency=ConstantLatency(5.0))
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        a.send("b", "note")
        sim.schedule(1.0, b.crash)
        sim.run()
        assert b.received == []

    def test_crash_interrupts_owned_processes(self, sim):
        net = make_net(sim)
        a = Echo(sim, net, "a")
        def proc():
            yield sim.timeout(100.0)
            return "survived"
        handle = a.spawn(proc())
        sim.schedule(1.0, a.crash)
        sim.run()
        assert handle.failed
        assert isinstance(handle.exception, NodeCrashed)

    def test_crash_cancels_timers(self, sim):
        net = make_net(sim)
        a = Echo(sim, net, "a")
        seen = []
        a.after(10.0, seen.append, "fired")
        sim.schedule(1.0, a.crash)
        sim.run()
        assert seen == []

    def test_crash_fails_pending_calls(self, sim):
        net = make_net(sim, latency=ConstantLatency(50.0))
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        future = a.call("b", "ping")
        sim.schedule(1.0, a.crash)
        sim.run()
        assert future.failed
        assert isinstance(future.exception, NodeCrashed)

    def test_recover_rejoins_network(self, sim):
        net = make_net(sim)
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        b.crash()
        b.recover()
        a.send("b", "note")
        sim.run()
        assert len(b.received) == 1

    def test_every_stops_after_crash(self, sim):
        net = make_net(sim)
        a = Echo(sim, net, "a")
        ticks = []
        a.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(3.5, a.crash)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]


class TestPerLinkLatency:
    def test_override_applies_to_specific_link(self, sim):
        model = PerLinkLatency(default=ConstantLatency(1.0))
        model.set_link("a", "b", ConstantLatency(20.0))
        net = Network(sim, latency=model)
        a, b, c = Echo(sim, net, "a"), Echo(sim, net, "b"), Echo(sim, net, "c")
        a.send("c", "note")
        a.send("b", "note")
        sim.run()
        assert sim.now == 20.0
        assert len(b.received) == 1 and len(c.received) == 1

    def test_trace_records_messages(self, sim):
        trace = TraceLog(sim)
        net = Network(sim, latency=ConstantLatency(1.0), trace=trace)
        a, b = Echo(sim, net, "a"), Echo(sim, net, "b")
        a.send("b", "note")
        sim.run()
        assert trace.count("message") == 1


class TestBroadcastIsolation:
    def test_receiver_mutation_does_not_leak_to_siblings(self, sim):
        # Regression: broadcast used to shallow-copy the payload, so one
        # receiver mutating a nested value corrupted every other envelope
        # (and the caller's dict).
        net = make_net(sim)
        Node(sim, net, "src")
        seen = {}
        def grab(msg):
            msg.payload["vector"][msg.dst] = "tainted"
            seen[msg.dst] = msg.payload["vector"]
        for name in ("a", "b", "c"):
            node = Node(sim, net, name)
            node.on("state", grab)
        original = {"vector": {"seed": 0}, "round": 1}
        net.broadcast("src", ["a", "b", "c"], "state", payload=original)
        sim.run()
        for name in ("a", "b", "c"):
            assert seen[name] == {"seed": 0, name: "tainted"}
        assert original == {"vector": {"seed": 0}, "round": 1}

    def test_nested_list_payload_isolated(self, sim):
        net = make_net(sim)
        Node(sim, net, "src")
        seen = {}
        def grab(msg):
            msg.payload["log"].append(msg.dst)
            seen[msg.dst] = msg.payload["log"]
        for name in ("a", "b"):
            node = Node(sim, net, name)
            node.on("state", grab)
        net.broadcast("src", ["a", "b"], "state", payload={"log": ["x"]})
        sim.run()
        assert seen["a"] == ["x", "a"]
        assert seen["b"] == ["x", "b"]


class TestPartitionMap:
    def test_repartition_without_heal(self, sim):
        # The node->group map must be rebuilt by every partition() call,
        # not only after an intervening heal().
        net = make_net(sim)
        a, b, c = Echo(sim, net, "a"), Echo(sim, net, "b"), Echo(sim, net, "c")
        net.partition(["a", "b"], ["c"])
        a.send("b", "note")
        sim.run()
        assert len(b.received) == 1
        net.partition(["a", "c"], ["b"])
        a.send("b", "note")
        a.send("c", "note")
        sim.run()
        assert len(b.received) == 1  # now cut off
        assert len(c.received) == 1  # now reachable

    def test_node_registered_after_partition_is_isolated(self, sim):
        net = make_net(sim)
        a = Echo(sim, net, "a")
        net.partition(["a"])
        late = Echo(sim, net, "late")
        a.send("late", "note")
        late.send("a", "note")
        sim.run()
        assert len(late.received) == 0
        assert len(a.received) == 0
        assert net.stats.dropped_partition == 2

    def test_overlapping_groups_first_wins(self, sim):
        net = make_net(sim)
        a, b, c = Echo(sim, net, "a"), Echo(sim, net, "b"), Echo(sim, net, "c")
        net.partition(["a", "b"], ["b", "c"])  # b belongs to its first group
        b.send("a", "note")
        b.send("c", "note")
        sim.run()
        assert len(a.received) == 1
        assert len(c.received) == 0


class TestCallTimerHygiene:
    def test_replied_calls_do_not_accumulate_guard_timers(self, sim):
        # Regression: every replied Node.call(timeout=...) used to leave
        # its expiry timer queued until the distant timeout, so RPC-heavy
        # runs dragged an ever-growing heap behind them.
        net = make_net(sim)
        Echo(sim, net, "server")
        client = Node(sim, net, "client")
        def caller():
            for _ in range(300):
                yield client.call("server", "ping", timeout=1_000_000.0)
        client.spawn(caller())
        sim.run()
        assert sim.now < 1_000_000.0
        assert sim.pending_events < 100

    def test_timeout_guard_still_fires_without_reply(self, sim):
        net = make_net(sim)
        deaf = Node(sim, net, "deaf")
        deaf.on("ping", lambda msg: None)  # receives, never replies
        client = Node(sim, net, "client")
        def caller():
            try:
                yield client.call("deaf", "ping", timeout=10.0)
            except TimeoutError:
                return sim.now
        handle = client.spawn(caller())
        sim.run()
        assert handle.result == 10.0


class _ObsProbe:
    """Duck-typed observer stub recording span opens and closes."""

    def __init__(self):
        self.sent = []
        self.delivered = []
        self.dropped = []

    def on_message_send(self, message):
        self.sent.append(message.msg_id)

    def on_message_deliver(self, message):
        self.delivered.append(message.msg_id)

    def on_message_drop(self, message, cause):
        self.dropped.append((message.msg_id, cause))


class TestObsFlightSpans:
    def test_unknown_destination_closes_flight_span(self, sim):
        # Regression: _route raised NetworkError for an unknown destination
        # without telling the observer, leaving the just-opened flight
        # span dangling forever.
        probe = _ObsProbe()
        net = Network(sim, latency=ConstantLatency(1.0), obs=probe)
        a = Echo(sim, net, "a")
        with pytest.raises(NetworkError):
            a.send("ghost", "note")
        assert probe.sent == [1]
        assert probe.dropped == [(1, "no-route")]
        assert probe.delivered == []
