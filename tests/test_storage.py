"""Unit tests for versioned storage."""

from hypothesis import given, settings, strategies as st

from repro.db import DataStore, Versioned


class TestBasics:
    def test_unwritten_item_reads_none_at_version_zero(self):
        store = DataStore("s1")
        assert store.read("x") is None
        assert store.version("x") == 0
        assert "x" not in store

    def test_write_bumps_version(self):
        store = DataStore()
        assert store.write("x", 10) == 1
        assert store.write("x", 20) == 2
        assert store.read("x") == 20
        assert store.version("x") == 2

    def test_write_versioned_installs_exact_version(self):
        store = DataStore()
        store.write_versioned("x", 5, 7)
        assert store.read_versioned("x") == Versioned(5, 7)

    def test_write_versioned_ignores_regression(self):
        store = DataStore()
        store.write_versioned("x", "new", 5)
        store.write_versioned("x", "old", 3)
        assert store.read("x") == "new"
        assert store.version("x") == 5

    def test_delete(self):
        store = DataStore()
        store.write("x", 1)
        store.delete("x")
        assert store.read("x") is None
        assert len(store) == 0

    def test_digest_is_write_order_independent_across_items(self):
        a, b = DataStore(), DataStore()
        a.write("x", 1)
        a.write("y", 2)
        b.write("y", 2)
        b.write("x", 1)
        assert a.digest() == b.digest()
        assert a.values_digest() == b.values_digest()

    def test_values_digest_ignores_versions(self):
        a, b = DataStore(), DataStore()
        a.write("x", "old")
        a.write("x", "final")
        b.write("x", "final")
        assert a.digest() != b.digest()
        assert a.values_digest() == b.values_digest()

    def test_snapshot_and_restore(self):
        store = DataStore()
        store.write("x", 1)
        shadow = store.snapshot()
        store.write("x", 2)
        store.write("y", 3)
        store.restore(shadow)
        assert store.read("x") == 1
        assert store.read("y") is None

    def test_dump_plain_view(self):
        store = DataStore()
        store.write("b", 2)
        store.write("a", 1)
        assert store.dump() == {"a": 1, "b": 2}

    @given(st.lists(st.tuples(st.sampled_from("xyz"), st.integers()), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_version_equals_write_count_per_item(self, writes):
        store = DataStore()
        counts = {}
        for item, value in writes:
            store.write(item, value)
            counts[item] = counts.get(item, 0) + 1
        for item, count in counts.items():
            assert store.version(item) == count

    @given(st.lists(st.tuples(st.sampled_from("xy"), st.integers()), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_snapshot_isolation_from_later_writes(self, writes):
        store = DataStore()
        store.write("x", "base")
        shadow = store.snapshot()
        for item, value in writes:
            store.write(item, value)
        fresh = DataStore()
        fresh.restore(shadow)
        assert fresh.read("x") == "base"
        assert len(fresh) == 1
