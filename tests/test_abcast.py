"""Tests for atomic broadcast: total order, atomicity, crash tolerance."""

from helpers import GroupHarness

from repro.groupcomm import ConsensusAtomicBroadcast, SequencerAtomicBroadcast


def attach_seq(h):
    return {
        name: SequencerAtomicBroadcast(
            h.nodes[name], h.transports[name], h.names, h.sink(name)
        )
        for name in h.names
    }


def attach_ct(h):
    return {
        name: ConsensusAtomicBroadcast(
            h.nodes[name], h.transports[name], h.names, h.detectors[name], h.sink(name)
        )
        for name in h.names
    }


def orders(h, members=None):
    members = members if members is not None else h.names
    return {name: [b["tag"] for _, _, b in h.delivered[name]] for name in members}


def assert_total_order(order_by_member):
    sequences = list(order_by_member.values())
    reference = max(sequences, key=len)
    for name, sequence in order_by_member.items():
        assert sequence == reference[: len(sequence)], (
            f"{name} diverges: {sequence} vs {reference}"
        )


class TestSequencerAbcast:
    def test_same_total_order_everywhere(self):
        h = GroupHarness(4, jitter=True, seed=21)
        ab = attach_seq(h)
        for i in range(8):
            ab[h.names[i % 4]].abcast("op", tag=i)
        h.run(until=1000)
        got = orders(h)
        assert_total_order(got)
        assert sorted(got["n0"]) == list(range(8))

    def test_sender_delivers_its_own_message(self):
        h = GroupHarness(3)
        ab = attach_seq(h)
        ab["n2"].abcast("op", tag="x")
        h.run(until=100)
        assert [b["tag"] for _, _, b in h.delivered["n2"]] == ["x"]

    def test_concurrent_bursts_still_ordered(self):
        h = GroupHarness(5, jitter=True, seed=33)
        ab = attach_seq(h)
        for i in range(5):
            for name in h.names:
                ab[name].abcast("op", tag=f"{name}/{i}")
        h.run(until=2000)
        got = orders(h)
        assert_total_order(got)
        assert len(got["n0"]) == 25

    def test_two_hops_cheaper_than_consensus(self):
        h1 = GroupHarness(3)
        attach_seq(h1)["n1"].abcast("op", tag=0)
        h1.run(until=200)
        seq_msgs = h1.net.stats.by_type["rt.data"]

        h2 = GroupHarness(3)
        attach_ct(h2)["n1"].abcast("op", tag=0)
        h2.run(until=200)
        ct_msgs = h2.net.stats.by_type["rt.data"]
        assert seq_msgs < ct_msgs


class TestConsensusAbcast:
    def test_same_total_order_everywhere(self):
        h = GroupHarness(3, jitter=True, seed=5)
        ab = attach_ct(h)
        for i in range(6):
            ab[h.names[i % 3]].abcast("op", tag=i)
        h.run(until=3000)
        got = orders(h)
        assert_total_order(got)
        assert sorted(got["n0"]) == list(range(6))

    def test_order_survives_member_crash(self):
        h = GroupHarness(5, fd_interval=2.0, fd_timeout=6.0, seed=7)
        ab = attach_ct(h)
        for i in range(4):
            ab[h.names[i]].abcast("op", tag=i)
        h.sim.schedule(0.5, h.nodes["n0"].crash)
        for i in range(4, 8):
            h.sim.schedule(30.0 + i, lambda i=i: ab[h.names[1 + i % 4]].abcast("op", tag=i))
        h.run(until=8000)
        survivors = h.names[1:]
        got = orders(h, survivors)
        assert_total_order(got)
        longest = max(got.values(), key=len)
        assert set(range(4, 8)) <= set(longest), "post-crash messages must be delivered"

    def test_atomicity_sender_crash_is_all_or_nothing(self):
        for seed in range(5):
            h = GroupHarness(4, seed=seed, loss_rate=0.2, fd_interval=2.0,
                             fd_timeout=8.0, retry_interval=2.0)
            ab = attach_ct(h)
            ab["n0"].abcast("op", tag="doomed")
            h.sim.schedule(0.1, h.nodes["n0"].crash)
            h.run(until=5000)
            counts = {len(h.delivered[name]) for name in h.names[1:]}
            assert len(counts) == 1, f"seed {seed}: non-uniform delivery"

    def test_stream_under_wrong_suspicions_keeps_total_order(self):
        h = GroupHarness(3, jitter=True, seed=17, fd_interval=1.0, fd_timeout=1.5)
        ab = attach_ct(h)
        for i in range(10):
            h.sim.schedule(i * 5.0, lambda i=i: ab[h.names[i % 3]].abcast("op", tag=i))
        h.run(until=10000)
        got = orders(h)
        assert_total_order(got)
        assert len(max(got.values(), key=len)) == 10
