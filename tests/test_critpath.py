"""Unit tests for the critical-path profiler and the time-series layer.

Everything here runs against hand-built span sets on a fake clock — no
simulator, no protocols — so each invariant of :mod:`repro.obs.critpath`
(timeline tiling, tie-breaking, the clamped frontier walk) and of
:mod:`repro.obs.timeseries` (bucketing, counter-track rendering) is
pinned in isolation.  The live-run counterparts live in
``tests/test_profiling.py``.
"""

import json

import pytest

from repro.obs import (
    KINDS,
    PHASES,
    PhaseTimeline,
    SpanTracer,
    TimeSeries,
    counter_trace,
    counter_track_events,
    critical_path,
    phase_matrix,
    request_profile,
)
from repro.obs.critpath import _belongs


class Clock:
    """A settable `.now` — the only clock interface the tracer needs."""

    def __init__(self, now=0.0):
        self.now = now


def make_tracer():
    clock = Clock()
    return SpanTracer(clock), clock


def add_phase(tracer, clock, time, phase, trace_id="r1", source="n0"):
    clock.now = time
    span = tracer.start(phase, "phase", source, trace_id=trace_id,
                        use_context=False)
    span.end = time  # tiles only need the entry instant
    return span


# ---------------------------------------------------------------------------
# _belongs: reuniting transaction-scoped spans with their request
# ---------------------------------------------------------------------------

def test_belongs_exact_and_derived_ids():
    assert _belongs("r1", "r1")
    assert _belongs("r1@primary", "r1")
    assert _belongs("r1:2", "r1")
    assert _belongs("r1#retry", "r1")


def test_belongs_rejects_sibling_prefixes():
    # "r10" starts with "r1" but is a different request.
    assert not _belongs("r10", "r1")
    assert not _belongs("r1x", "r1")
    assert not _belongs("r2", "r1")
    assert not _belongs("", "r1")


# ---------------------------------------------------------------------------
# PhaseTimeline
# ---------------------------------------------------------------------------

def test_timeline_defaults_to_re_before_any_record():
    tracer, clock = make_tracer()
    timeline = PhaseTimeline(tracer.spans, "r1")
    assert timeline.phase_at(0.0) == "RE"
    assert timeline.phase_at(100.0) == "RE"


def test_timeline_tiles_partition_exactly():
    tracer, clock = make_tracer()
    add_phase(tracer, clock, 1.0, "RE")
    add_phase(tracer, clock, 3.0, "SC")
    add_phase(tracer, clock, 6.0, "EX")
    add_phase(tracer, clock, 6.5, "END")
    timeline = PhaseTimeline(tracer.spans, "r1")
    tiles = timeline.tiles(0.0, 10.0)
    # Contiguous, starts at lo, ends at hi, durations sum to the window.
    assert tiles[0][0] == 0.0 and tiles[-1][1] == 10.0
    for (_, hi, _), (lo, _, _) in zip(tiles, tiles[1:]):
        assert hi == lo
    assert sum(hi - lo for lo, hi, _ in tiles) == pytest.approx(10.0)
    assert [phase for _, _, phase in tiles] == ["RE", "SC", "EX", "END"]
    # The pre-record stretch merges into the explicit RE tile.
    assert tiles[0] == (0.0, 3.0, "RE")


def test_timeline_dedups_same_phase_reentry():
    tracer, clock = make_tracer()
    add_phase(tracer, clock, 1.0, "EX")
    add_phase(tracer, clock, 2.0, "EX")  # loop iteration: same phase again
    add_phase(tracer, clock, 3.0, "END")
    timeline = PhaseTimeline(tracer.spans, "r1")
    assert timeline.tiles(1.0, 4.0) == [(1.0, 3.0, "EX"), (3.0, 4.0, "END")]


def test_timeline_ignores_other_traces_and_empty_window():
    tracer, clock = make_tracer()
    add_phase(tracer, clock, 1.0, "AC", trace_id="r2")
    timeline = PhaseTimeline(tracer.spans, "r1")
    assert timeline.phase_at(5.0) == "RE"
    assert timeline.tiles(3.0, 3.0) == []
    assert timeline.tiles(4.0, 3.0) == []


def test_timeline_span_id_breaks_same_instant_ties():
    # A whole request stage executes at one simulated instant: SC, EX and
    # END records all share t=2.0.  A message sent from inside the SC
    # handler (its span id falls between the SC and EX records) must be
    # attributed to SC, not to whichever record sorts last.
    tracer, clock = make_tracer()
    add_phase(tracer, clock, 0.0, "RE")
    sc = add_phase(tracer, clock, 2.0, "SC")
    clock.now = 2.0
    msg = tracer.start("msg:vote", "message", "n0", trace_id="r1",
                       use_context=False)
    ex = add_phase(tracer, clock, 2.0, "EX")
    end = add_phase(tracer, clock, 2.0, "END")
    timeline = PhaseTimeline(tracer.spans, "r1")
    assert sc.span_id < msg.span_id < ex.span_id < end.span_id
    assert timeline.phase_at(2.0, msg.span_id) == "SC"
    assert timeline.phase_at(2.0, end.span_id + 1) == "END"
    assert timeline.phase_at(1.0, msg.span_id) == "RE"
    # Without a span id the tie collapses to the last record (fine for
    # time attribution — the ambiguous interval is zero-width).
    assert timeline.phase_at(2.0) == "END"


# ---------------------------------------------------------------------------
# critical_path: the clamped backward frontier walk
# ---------------------------------------------------------------------------

def build_request_tree(tracer, clock):
    """root(c0, 0..5) -> flight(0..1) -> handle(1..2) -> response(2..3).

    The client then sits on the answer until 5.0 — time the tree cannot
    explain, which must surface as the root's own ``blocked`` segment.
    """
    clock.now = 0.0
    root = tracer.start("request", "request", "c0", trace_id="r1",
                        use_context=False)
    flight = tracer.start("msg:client.request", "message", "c0",
                          trace_id="r1", parent_id=root.span_id)
    clock.now = 1.0
    tracer.finish(flight)
    handle = tracer.start("handle:client.request", "handle", "n0",
                          trace_id="r1", parent_id=flight.span_id)
    clock.now = 2.0
    tracer.finish(handle)
    response = tracer.start("msg:client.response", "message", "n0",
                            trace_id="r1", parent_id=handle.span_id)
    clock.now = 3.0
    tracer.finish(response)
    clock.now = 5.0
    tracer.finish(root)
    return root


def test_critical_path_tiles_the_response_window():
    tracer, clock = make_tracer()
    root = build_request_tree(tracer, clock)
    found, segments = critical_path(tracer.spans, "r1")
    assert found is root
    assert segments[0].start == root.start
    assert segments[-1].end == root.end
    for left, right in zip(segments, segments[1:]):
        assert left.end == right.start
    assert sum(s.duration for s in segments) == pytest.approx(5.0)
    assert [s.kind for s in segments] == [
        "transit", "execution", "transit", "blocked",
    ]
    # The unexplained tail is the client's own wait.
    assert segments[-1].source == "c0" and segments[-1].duration == 2.0


def test_critical_path_adopts_orphan_subtrees():
    # A flight parented under a span outside the work tree (a phase span)
    # is adopted under the root and still clamped to the asked window.
    tracer, clock = make_tracer()
    root = build_request_tree(tracer, clock)
    anchor = add_phase(tracer, clock, 3.0, "AC")
    clock.now = 3.0
    orphan = tracer.start("msg:apply", "message", "n1", trace_id="r1",
                          parent_id=anchor.span_id)
    clock.now = 4.0
    tracer.finish(orphan)
    _, segments = critical_path(tracer.spans, "r1")
    assert sum(s.duration for s in segments) == pytest.approx(5.0)
    by_id = {s.span_id: s for s in segments}
    assert by_id[orphan.span_id].kind == "transit"
    assert by_id[orphan.span_id].start == 3.0
    assert by_id[orphan.span_id].end == 4.0


def test_critical_path_without_root_or_width():
    tracer, clock = make_tracer()
    assert critical_path(tracer.spans, "r1") == (None, [])
    clock.now = 2.0
    root = tracer.start("request", "request", "c0", trace_id="r1",
                        use_context=False)
    tracer.finish(root)  # zero-width request
    found, segments = critical_path(tracer.spans, "r1")
    assert found is root and segments == []


def test_critical_path_clamps_child_overreach():
    # A child subtree reaching past the root's end (lazy propagation
    # outliving the response) must be clamped to the response window.
    tracer, clock = make_tracer()
    root = build_request_tree(tracer, clock)
    clock.now = 4.0
    late = tracer.start("msg:propagate", "message", "n0", trace_id="r1",
                        parent_id=root.span_id)
    clock.now = 50.0
    tracer.finish(late)
    _, segments = critical_path(tracer.spans, "r1")
    assert segments[-1].end == root.end == 5.0
    assert sum(s.duration for s in segments) == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# request_profile + phase_matrix
# ---------------------------------------------------------------------------

def build_profiled_request(tracer, clock):
    root = build_request_tree(tracer, clock)
    add_phase(tracer, clock, 0.0, "RE")
    add_phase(tracer, clock, 1.0, "EX")
    add_phase(tracer, clock, 2.5, "END")
    # Post-response propagation: a flight after the response window, on a
    # derived trace id, with a byte estimate — END governs its send time.
    clock.now = 10.0
    late = tracer.start("msg:propagate", "message", "n0",
                        trace_id="r1@primary", use_context=False, bytes=40)
    clock.now = 12.0
    tracer.finish(late)
    return root


def test_request_profile_invariants():
    tracer, clock = make_tracer()
    build_profiled_request(tracer, clock)
    profile = request_profile(tracer.spans, "r1")
    assert profile is not None
    rt = profile["response_time"]
    assert rt == pytest.approx(5.0)
    assert sum(profile["phases"].values()) == pytest.approx(rt)
    assert sum(profile["phase_shares"].values()) == pytest.approx(1.0)
    assert profile["critical_path_length"] <= rt + 1e-9
    assert sum(profile["kinds"].values()) == pytest.approx(rt)
    assert set(profile["phases"]) == set(PHASES)
    assert set(profile["kinds"]) == set(KINDS)
    assert profile["phases"]["RE"] == pytest.approx(1.0)
    assert profile["phases"]["EX"] == pytest.approx(1.5)
    assert profile["phases"]["END"] == pytest.approx(2.5)
    assert profile["dominant_phase"] == "END"
    # Every split segment carries exactly one phase and they still tile.
    assert sum(s["end"] - s["start"] for s in profile["segments"]) == \
        pytest.approx(rt)
    assert all(s["phase"] in PHASES for s in profile["segments"])


def test_request_profile_counts_post_response_messages():
    tracer, clock = make_tracer()
    build_profiled_request(tracer, clock)
    profile = request_profile(tracer.spans, "r1")
    # Flights: client.request (RE), client.response (EX window), and the
    # late propagation at t=10 attributed to the last phase (END).
    assert sum(profile["messages"].values()) == 3
    assert profile["messages"] == {
        "RE": 1, "SC": 0, "EX": 1, "AC": 0, "END": 1,
    }
    assert profile["bytes"]["END"] == 40


def test_request_profile_missing_request_returns_none():
    tracer, clock = make_tracer()
    build_profiled_request(tracer, clock)
    assert request_profile(tracer.spans, "nope") is None


def test_phase_matrix_aggregates_and_normalises():
    tracer, clock = make_tracer()
    build_profiled_request(tracer, clock)
    profile = request_profile(tracer.spans, "r1")
    matrix = phase_matrix([profile, profile])
    assert matrix["requests"] == 2
    assert matrix["response_time_total"] == pytest.approx(10.0)
    assert matrix["response_time_mean"] == pytest.approx(5.0)
    assert matrix["dominant_phase"] == "END"
    assert sum(row["share"] for row in matrix["phases"].values()) == \
        pytest.approx(1.0)
    assert matrix["phases"]["END"]["messages"] == 2
    assert matrix["phases"]["END"]["bytes"] == 80
    kinds_total = sum(row["time"] for row in matrix["kinds"].values())
    assert kinds_total == pytest.approx(10.0)


def test_phase_matrix_empty_is_well_formed():
    matrix = phase_matrix([])
    assert matrix["requests"] == 0
    assert matrix["response_time_total"] == 0.0
    assert matrix["dominant_phase"] == "RE"
    assert all(row["share"] == 0.0 for row in matrix["phases"].values())


# ---------------------------------------------------------------------------
# TimeSeries
# ---------------------------------------------------------------------------

def test_timeseries_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        TimeSeries(0.0)
    with pytest.raises(ValueError):
        TimeSeries(-5.0)


def test_timeseries_buckets_counts_and_totals():
    series = TimeSeries(10.0)
    series.observe(0.0, 2.0)
    series.observe(9.9, 4.0)
    series.observe(10.0, 1.0)
    series.observe(35.0)  # default value 1.0
    assert series.counts() == [(0.0, 2), (10.0, 1), (30.0, 1)]
    assert series.totals() == [(0.0, 6.0), (10.0, 1.0), (30.0, 1.0)]
    assert len(series) == 3


def test_timeseries_summary_tracks_min_max():
    series = TimeSeries(10.0)
    series.observe(1.0, 5.0)
    series.observe(2.0, -3.0)
    summary = series.summary()
    assert summary["width"] == 10.0
    bucket = summary["buckets"]["0"]
    assert bucket == {"count": 2, "sum": 2.0, "min": -3.0, "max": 5.0}


def test_timeseries_sparkline_shows_gaps():
    series = TimeSeries(10.0)
    assert series.sparkline() == ""
    series.observe(5.0)
    series.observe(25.0)
    series.observe(25.1)
    line = series.sparkline()
    assert len(line) == 3  # buckets 0..2 inclusive
    assert line[1] == " "  # the empty middle bucket reads as a gap
    assert line[0] != " " and line[2] != " "


# ---------------------------------------------------------------------------
# Perfetto counter tracks
# ---------------------------------------------------------------------------

def test_counter_track_events_shape_and_closing_zero():
    series = TimeSeries(50.0)
    series.observe(10.0, 2.0)
    series.observe(60.0, 3.0)
    events = counter_track_events({"ts.completions": series})
    assert all(e["ph"] == "C" for e in events)
    assert [e["ts"] for e in events] == [0.0, 50000.0, 100000.0]
    assert events[0]["args"] == {"count": 1, "sum": 2.0}
    assert events[-1]["args"] == {"count": 0, "sum": 0}  # returns to baseline
    assert events == counter_track_events({"ts.completions": series})
    assert counter_track_events({"empty": TimeSeries(50.0)}) == []


def test_counter_trace_is_a_valid_stable_document():
    series = TimeSeries(50.0)
    series.observe(0.0, 1.0)
    text = counter_trace({"ts.messages": series}, process_name="unit")
    assert text.endswith("\n")
    document = json.loads(text)
    assert document["displayTimeUnit"] == "ms"
    names = [e["name"] for e in document["traceEvents"]]
    assert names[0] == "process_name"
    assert "ts.messages" in names
    assert text == counter_trace({"ts.messages": series}, process_name="unit")
