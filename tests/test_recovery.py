"""Tests for replica crash-recovery and resynchronisation."""

import pytest

from repro import Operation, ReplicatedSystem


def drive(system, n, gap=25.0, client=0):
    """Closed loop of increments, re-submitting aborted transactions.

    A transaction racing a secondary's crash can legitimately abort (its
    2PC vote round times out before the failure detector excludes the dead
    site); real database clients retry, so this driver does too.
    """
    def loop():
        results = []
        for _ in range(n):
            result = yield system.client(client).submit(
                [Operation.update("x", "add", 1)]
            )
            while not result.committed:
                yield system.sim.timeout(5.0)
                result = yield system.client(client).submit(
                    [Operation.update("x", "add", 1)]
                )
            results.append(result)
            yield system.sim.timeout(gap)
        return results
    handle = system.sim.spawn(loop())
    system.sim.run_until_done(handle)
    return handle.result


class TestEagerPrimaryRecovery:
    def test_recovered_secondary_catches_up(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=1,
                                  fd_interval=2.0, fd_timeout=8.0)
        system.injector.crash_at(30.0, "r2")
        system.injector.recover_at(160.0, "r2")
        results = drive(system, 6, gap=25.0)
        assert all(r.committed for r in results)
        system.settle(300)
        assert system.store_of("r2").read("x") == 6, (
            "recovered secondary must resync the commits it missed"
        )

    def test_recovered_old_primary_rejoins_as_secondary(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=2,
                                  fd_interval=2.0, fd_timeout=8.0)
        system.injector.crash_at(40.0, "r0")
        system.injector.recover_at(200.0, "r0")
        results = drive(system, 8, gap=25.0)
        assert all(r.committed for r in results)
        assert system.directory.primary == "r1", "promotion must stick"
        system.settle(400)
        # The old primary resynced and then kept receiving 2PC updates.
        assert system.store_of("r0").read("x") == 8

    def test_in_flight_workspace_cleared_on_recovery(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=3)
        proto = system.protocol_at("r2")
        proto._workspaces["ghost"] = [("x", 1)]
        system.replicas["r2"].node.crash()
        system.replicas["r2"].node.recover()
        system.settle(100)
        assert proto._workspaces == {}


class TestLazyPrimaryRecovery:
    def test_recovered_secondary_resyncs_missed_shipments(self):
        system = ReplicatedSystem("lazy_primary", replicas=3, seed=4,
                                  fd_interval=2.0, fd_timeout=8.0,
                                  config={"propagation_delay": 5.0})
        system.injector.crash_at(30.0, "r2")
        system.injector.recover_at(150.0, "r2")
        results = drive(system, 6, gap=25.0)
        assert all(r.committed for r in results)
        system.settle(300)
        assert system.store_of("r2").read("x") == 6

    def test_recovery_without_reachable_primary_stays_stale(self):
        system = ReplicatedSystem("lazy_primary", replicas=2, seed=5,
                                  config={"propagation_delay": 5.0})
        system.execute([Operation.write("x", "v1")])
        system.settle(100)
        system.replicas["r1"].node.crash()
        system.execute([Operation.write("x", "v2")])
        system.replicas["r0"].node.crash()   # primary also gone
        system.replicas["r1"].node.recover() # resync target unreachable
        system.settle(200)
        assert system.store_of("r1").read("x") == "v1", "stays at pre-crash state"
