"""Tests for the observability layer (repro.obs).

Three layers of guarantees:

* **Unit** — span tracer causality, metrics registry snapshots, the
  exporters' shapes.
* **Neutrality** — observing a run changes nothing: same seed, same
  results, same store contents, with and without the observer.
* **Regression, per technique** — the same seed twice produces
  byte-identical span exports; every committed request's trace contains
  the technique's declared phase sequence; and every message span's type
  is covered by the generated protocol catalog (docs/messages.json), so
  the dynamic span world and the static message-flow world agree.
"""

import json
import os
from pathlib import Path

import pytest

from repro import REGISTRY, Operation, ReplicatedSystem
from repro.lint.engine import collect_files, parse_file
from repro.lint.msgflow import build_catalog, pattern_matches
from repro.lint.symeval import WILDCARD
from repro.obs import (
    MetricsRegistry,
    Observer,
    SpanTracer,
    abort_reason_label,
    chrome_trace,
    spans_jsonl,
    write_artifacts,
)
from repro.workload import WorkloadSpec, run_workload

REPO = Path(__file__).resolve().parent.parent

TECHNIQUES = sorted(REGISTRY)

SPEC = WorkloadSpec(items=6, read_fraction=0.3, ops_per_transaction=2)

# Semi-active replication only enters its AC phase at non-deterministic
# choice points (Figure 4: "EX and AC are repeated for each non
# deterministic choice"), so its workload uses the non-deterministic
# update function to exercise the declared sequence.
SPECS = {
    "semi_active": WorkloadSpec(
        items=6, read_fraction=0.3, ops_per_transaction=2,
        update_func="random_token",
    ),
}


def _observed_run(technique: str):
    system, driver, summary = run_workload(
        technique,
        spec=SPECS.get(technique, SPEC),
        replicas=3,
        clients=2,
        requests_per_client=2,
        seed=1301,
        think_time=5.0,
        settle=300.0,
        config={"abcast": "sequencer"},
        observe=True,
    )
    system.observer.finalize()
    return system, driver


def _export(system):
    spans = system.observer.tracer.spans
    order = system.replica_names + [c.name for c in system.clients]
    return (
        chrome_trace(spans, node_order=order),
        spans_jsonl(spans),
        system.observer.metrics.report(title="run"),
    )


@pytest.fixture(scope="module")
def runs():
    """Two independent same-seed observed runs per technique, cached."""
    cache = {}

    def get(technique):
        if technique not in cache:
            cache[technique] = (_observed_run(technique), _observed_run(technique))
        return cache[technique]

    return get


@pytest.fixture(scope="module")
def catalog():
    cwd = os.getcwd()
    os.chdir(REPO)
    try:
        contexts = []
        for path in collect_files(["src/repro"]):
            context, error = parse_file(path)
            assert error is None, f"unparseable source: {error}"
            contexts.append(context)
        return build_catalog(contexts)
    finally:
        os.chdir(cwd)


def _is_subsequence(needle, haystack):
    iterator = iter(haystack)
    return all(item in iterator for item in needle)


# ---------------------------------------------------------------------------
# Unit: span tracer
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0


class TestSpanTracer:
    def test_ids_are_sequential_and_times_from_clock(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        a = tracer.start("a", "cat", "n1")
        clock.now = 2.0
        b = tracer.start("b", "cat", "n1")
        tracer.finish(a)
        assert (a.span_id, b.span_id) == (1, 2)
        assert a.start == 0.0 and a.end == 2.0 and a.duration == 2.0

    def test_context_stack_sets_parent_and_trace(self):
        tracer = SpanTracer(FakeClock())
        root = tracer.start("root", "request", "c0", trace_id="req-1",
                            use_context=False)
        with tracer.context(root):
            child = tracer.start("child", "message", "c0")
        assert child.parent_id == root.span_id
        assert child.trace_id == "req-1"
        # Outside the context: no parent inherited.
        orphan = tracer.start("orphan", "message", "c0")
        assert orphan.parent_id is None and orphan.trace_id == ""

    def test_explicit_parent_wins_over_context(self):
        tracer = SpanTracer(FakeClock())
        a = tracer.start("a", "cat", "n", trace_id="t1", use_context=False)
        b = tracer.start("b", "cat", "n", trace_id="t2", use_context=False)
        with tracer.context(a):
            child = tracer.start("c", "cat", "n", parent_id=b.span_id)
        assert child.parent_id == b.span_id
        assert child.trace_id == "t2"

    def test_finalize_bounds_open_spans(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        span = tracer.start("open", "phase", "r0")
        clock.now = 7.0
        done = tracer.start("done", "phase", "r0")
        tracer.finish(done)
        tracer.finalize()
        assert span.end == 7.0 and span.status == "open"
        assert done.status == "ok"

    def test_instant_is_point_event(self):
        tracer = SpanTracer(FakeClock())
        span = tracer.instant("tick", "gc", "r0")
        assert span.kind == "instant" and span.start == span.end


# ---------------------------------------------------------------------------
# Unit: metrics registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counters_gauges_histograms_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("msgs")
        registry.inc("msgs", amount=2)
        registry.inc("msgs.by_type", label="abcast")
        registry.set("height", 4.5)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("lat", value)
        snap = registry.snapshot()
        assert snap["counters"]["msgs"] == 3
        assert snap["counters"]["msgs.by_type{abcast}"] == 1
        assert snap["gauges"]["height"] == 4.5
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 4 and hist["mean"] == 2.5 and hist["max"] == 4.0

    def test_histogram_percentiles_nearest_rank(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("lat", float(value))
        hist = registry.snapshot()["histograms"]["lat"]
        assert hist["p50"] == 50.0
        assert hist["p95"] == 95.0
        assert hist["p99"] == 99.0

    def test_report_is_deterministic_text(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        registry.observe("h", 1.0)
        first = registry.report(title="t")
        assert first == registry.report(title="t")
        assert first.endswith("\n")
        assert first.index("a") < first.index("b")

    def test_abort_reason_labels_bounded(self):
        assert abort_reason_label("transaction r0:t3: deadlock victim") == "deadlock"
        assert abort_reason_label("lock wait timeout") == "timeout"
        assert abort_reason_label("certification failed on x") == "certification"
        assert abort_reason_label("weird new failure") == "other"


# ---------------------------------------------------------------------------
# Unit: exporters
# ---------------------------------------------------------------------------

class TestExporters:
    def _tracer_with_spans(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        root = tracer.start("request", "request", "c0", trace_id="req-1",
                            use_context=False)
        msg = tracer.start("msg:ping", "message", "c0", parent_id=root.span_id,
                           type="ping", src="c0", dst="r0", msg_id=1)
        clock.now = 1.0
        tracer.finish(msg)
        handler = tracer.start("on:ping", "handler", "r0",
                               parent_id=msg.span_id)
        tracer.finish(handler)
        tracer.finish(root)
        return tracer

    def test_chrome_trace_shape(self):
        tracer = self._tracer_with_spans()
        document = json.loads(chrome_trace(tracer.spans, node_order=["r0", "c0"]))
        events = document["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"request", "msg:ping", "on:ping"}
        # The delivered message produced a flow arrow pair.
        assert [e["ph"] for e in events if e["name"] == "flight"] == ["s", "f"]

    def test_spans_jsonl_round_trips(self):
        tracer = self._tracer_with_spans()
        lines = spans_jsonl(tracer.spans).strip().split("\n")
        parsed = [json.loads(line) for line in lines]
        assert [p["span_id"] for p in parsed] == [1, 2, 3]
        assert parsed[1]["parent_id"] == 1
        assert parsed[2]["parent_id"] == 2

    def test_write_artifacts_creates_three_files(self, tmp_path):
        observer = Observer(FakeClock())
        observer.on_request_submit("req-1", "c0")
        observer.on_request_complete("req-1", True)
        paths = write_artifacts(observer, str(tmp_path / "run"))
        assert sorted(paths) == ["metrics", "spans", "trace"]
        for path in paths.values():
            assert os.path.exists(path) and os.path.getsize(path) > 0


# ---------------------------------------------------------------------------
# Neutrality: observation never perturbs a run
# ---------------------------------------------------------------------------

class TestZeroCostWhenDisabled:
    def test_unobserved_system_builds_no_observer(self):
        system = ReplicatedSystem("eager_primary", replicas=3, seed=3)
        assert system.observer is None
        assert system.net.obs is None
        assert system.tracer.obs is None
        for replica in system.replicas.values():
            assert replica.tm.obs is None
            assert replica.tm.locks.obs is None

    @pytest.mark.parametrize("technique", ["active", "eager_primary", "lazy_ue"])
    def test_observation_is_neutral(self, technique):
        results = {}
        for observe in (False, True):
            system = ReplicatedSystem(
                technique, replicas=3, seed=11, observe=observe,
                config={"abcast": "sequencer"},
            )
            result = system.execute(
                [Operation.write("x", 1), Operation.read("x")]
            )
            system.settle(200.0)
            results[observe] = (
                result.committed,
                result.completed_at,
                {n: system.store_of(n).digest() for n in system.replica_names},
                len(system.trace),
            )
        assert results[False] == results[True]


# ---------------------------------------------------------------------------
# Regression: per-technique determinism, phase coverage, catalog agreement
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("technique", TECHNIQUES)
def test_same_seed_exports_are_byte_identical(technique, runs):
    (system_a, _), (system_b, _) = runs(technique)
    chrome_a, jsonl_a, report_a = _export(system_a)
    chrome_b, jsonl_b, report_b = _export(system_b)
    assert chrome_a == chrome_b, f"{technique}: chrome trace differs across runs"
    assert jsonl_a == jsonl_b, f"{technique}: span JSONL differs across runs"
    assert report_a == report_b, f"{technique}: metrics report differs across runs"
    assert len(system_a.observer.tracer.spans) > 0


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_request_traces_contain_declared_phase_sequence(technique, runs):
    (system, driver), _ = runs(technique)
    # Read-only requests legitimately short-circuit the coordination
    # phases (served locally), so the declared sequence is checked on
    # committed *update* requests only.
    committed = [
        r for r in driver.results
        if r.committed and any(op.is_write for op in r.operations)
    ]
    assert committed, f"{technique}: no committed updates under the test workload"
    tracer = system.observer.tracer
    for result in committed:
        declared = system.info.descriptor_for(len(result.operations)).phase_names()
        observed = tracer.phase_sequence(str(result.request_id))
        assert _is_subsequence(declared, observed), (
            f"{technique} {result.request_id}: declared {declared} "
            f"not contained in observed {observed}"
        )


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_message_spans_covered_by_catalog(technique, runs, catalog):
    (system, _), _ = runs(technique)
    patterns = [
        record["type"].replace("*", WILDCARD) for record in catalog["types"]
    ]

    def covered(concrete):
        return any(pattern_matches(p, concrete) for p in patterns)

    message_spans = [
        s for s in system.observer.tracer.spans if s.category == "message"
    ]
    assert message_spans, f"{technique}: no message spans recorded"
    uncovered = set()
    for span in message_spans:
        if not covered(span.attrs["type"]):
            uncovered.add(span.attrs["type"])
        inner = span.attrs.get("inner")
        if inner is not None and not covered(inner):
            uncovered.add(inner)
    assert not uncovered, (
        f"{technique}: span message types missing from docs/messages.json: "
        f"{sorted(uncovered)}"
    )


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_every_message_span_closes(technique, runs):
    (system, _), _ = runs(technique)
    for span in system.observer.tracer.spans:
        assert span.end is not None, f"{technique}: unbounded span {span!r}"
        if span.category == "message":
            assert span.status == "ok" or span.status.startswith(("dropped:", "open")), (
                f"{technique}: unexpected message status {span.status!r}"
            )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_observe_writes_artifacts(tmp_path, capsys):
    from repro.__main__ import main

    code = main(["observe", "active", "--seed", "1", "--requests", "2",
                 "--out", str(tmp_path)])
    assert code == 0
    stem = tmp_path / "observe_active_seed1"
    for suffix in (".trace.json", ".spans.jsonl", ".metrics.txt"):
        path = Path(str(stem) + suffix)
        assert path.exists() and path.stat().st_size > 0, suffix
    out = capsys.readouterr().out
    assert "spans" in out and "[counters]" in out


def test_cli_observe_rejects_unknown_technique(tmp_path):
    from repro.__main__ import main

    assert main(["observe", "nope", "--out", str(tmp_path)]) == 2
