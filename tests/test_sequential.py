"""Tests for the sequential-consistency checker and the paper's §2.2
criterion contrast: linearizability is strictly stronger."""

from repro import Operation, ReplicatedSystem
from repro.analysis import (
    History,
    Invocation,
    check_linearizable,
    check_sequentially_consistent,
    history_from_results,
)


def inv(kind, item, start, end, output=None, argument=None, func="set",
        client="c", rid=None):
    return Invocation(
        request_id=rid or f"{client}-{kind}-{start}",
        kind=kind, item=item, argument=argument, func=func,
        output=output, start=start, end=end, client=client,
    )


class TestChecker:
    def test_empty_history_ok(self):
        assert check_sequentially_consistent(History([])).ok

    def test_program_order_must_hold(self):
        # One client writes then reads back something else entirely:
        # no reordering can save this.
        history = History([
            inv("write", "x", 0, 1, argument="mine", client="c0"),
            inv("read", "x", 2, 3, output="other", client="c0"),
        ])
        assert not check_sequentially_consistent(history).ok

    def test_stale_read_across_clients_is_allowed(self):
        # c0's write completed in real time before c1's read began, yet
        # the read returned the old value.  NOT linearizable, but
        # sequentially consistent: c1's op may be ordered first.
        history = History([
            inv("write", "x", 0, 1, argument="new", client="c0"),
            inv("read", "x", 5, 6, output=None, client="c1"),
        ])
        assert not check_linearizable(history, initial=None).ok
        assert check_sequentially_consistent(history, initial=None).ok

    def test_own_writes_must_be_visible(self):
        # The same stale read is illegal when issued by the writer itself.
        history = History([
            inv("write", "x", 0, 1, argument="new", client="c0"),
            inv("read", "x", 5, 6, output=None, client="c0"),
        ])
        assert not check_sequentially_consistent(history, initial=None).ok

    def test_impossible_value_still_fails(self):
        history = History([
            inv("write", "x", 0, 1, argument=1, client="c0"),
            inv("read", "x", 2, 3, output=999, client="c1"),
        ])
        assert not check_sequentially_consistent(history).ok

    def test_counter_outputs_constrain_order(self):
        history = History([
            inv("update", "x", 0, 1, output=1, argument=1, func="add", client="c0"),
            inv("update", "x", 0, 1, output=2, argument=1, func="add", client="c1"),
        ])
        assert check_sequentially_consistent(history, initial=None).ok
        history_bad = History([
            inv("update", "x", 0, 1, output=1, argument=1, func="add", client="c0"),
            inv("update", "x", 2, 3, output=1, argument=1, func="add", client="c1"),
        ])
        assert not check_sequentially_consistent(history_bad, initial=None).ok


class TestLazyPrimaryIsSequentialNotLinearizable:
    """The paper: 'Sequential consistency allows, under some conditions,
    to read old values.'  Lazy primary copy produces exactly such
    histories: secondaries serve stale reads."""

    def build_history(self):
        system = ReplicatedSystem(
            "lazy_primary", replicas=2, clients=2, seed=3,
            config={"propagation_delay": 60.0},
        )
        results = []

        def writer():
            results.append((yield system.client(0).submit([Operation.write("x", "v1")])))

        def stale_reader():
            yield system.sim.timeout(20.0)  # well after the write completed
            results.append((yield system.client(1).submit([Operation.read("x")])))

        handles = [system.sim.spawn(writer()), system.sim.spawn(stale_reader())]
        system.sim.run_until_done(system.sim.all_of(handles))
        invocations = []
        for index, client in enumerate(system.clients):
            for invocation in history_from_results(client.results, client=f"c{index}"):
                invocations.append(invocation)
        return system, History(invocations), results

    def test_reader_saw_stale_value(self):
        system, history, results = self.build_history()
        read = next(r for r in results if r.operations[0].kind == "read")
        assert read.value is None, "secondary must still be stale"

    def test_history_not_linearizable_but_sequentially_consistent(self):
        system, history, results = self.build_history()
        assert not check_linearizable(history, initial=None).ok
        assert check_sequentially_consistent(history, initial=None).ok

    def test_eager_primary_same_scenario_is_linearizable(self):
        system = ReplicatedSystem("eager_primary", replicas=2, clients=2, seed=3)
        results = []

        def writer():
            results.append((yield system.client(0).submit([Operation.write("x", "v1")])))

        def reader():
            yield system.sim.timeout(20.0)
            results.append((yield system.client(1).submit([Operation.read("x")])))

        handles = [system.sim.spawn(writer()), system.sim.spawn(reader())]
        system.sim.run_until_done(system.sim.all_of(handles))
        invocations = []
        for index, client in enumerate(system.clients):
            for invocation in history_from_results(client.results, client=f"c{index}"):
                invocations.append(invocation)
        assert check_linearizable(History(invocations), initial=None).ok


class TestCriterionHierarchyProperty:
    """Section 2.2: 'Linearisability is strictly stronger than sequential
    consistency' — every linearizable history must also pass the
    sequential-consistency checker."""

    def test_linearizable_implies_sequentially_consistent(self):
        import random
        rng = random.Random(42)
        checked = 0
        for trial in range(40):
            # Generate a history by actually running a legal register:
            # random interleaved client sessions against one true value.
            invocations = []
            value = None
            time = 0.0
            for step in range(rng.randint(1, 7)):
                client = f"c{rng.randint(0, 2)}"
                time += rng.uniform(0.5, 3.0)
                duration = rng.uniform(0.1, 1.0)
                if rng.random() < 0.5:
                    argument = rng.randint(0, 9)
                    value = argument
                    invocations.append(inv("write", "x", time, time + duration,
                                           argument=argument, client=client,
                                           rid=f"t{trial}-{step}"))
                else:
                    invocations.append(inv("read", "x", time, time + duration,
                                           output=value, client=client,
                                           rid=f"t{trial}-{step}"))
                time += duration
            history = History(invocations)
            if check_linearizable(history, initial=None).ok:
                checked += 1
                assert check_sequentially_consistent(history, initial=None).ok, (
                    f"trial {trial}: linearizable history failed SC"
                )
        assert checked >= 30, "generator should produce linearizable histories"
