"""Tests for workload generation and the closed-loop driver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import ClosedLoopDriver, WorkloadGenerator, WorkloadSpec, run_workload


class TestWorkloadSpec:
    def test_invalid_read_fraction_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(read_fraction=1.5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(items=0)
        with pytest.raises(ValueError):
            WorkloadSpec(ops_per_transaction=0)


class TestWorkloadGenerator:
    def test_transaction_size_matches_spec(self):
        generator = WorkloadGenerator(WorkloadSpec(ops_per_transaction=4), seed=1)
        assert len(generator.next_transaction()) == 4

    def test_read_fraction_zero_means_all_updates(self):
        generator = WorkloadGenerator(WorkloadSpec(read_fraction=0.0), seed=1)
        ops = [op for _ in range(20) for op in generator.next_transaction()]
        assert all(op.kind == "update" for op in ops)

    def test_read_fraction_one_means_all_reads(self):
        generator = WorkloadGenerator(WorkloadSpec(read_fraction=1.0), seed=1)
        ops = [op for _ in range(20) for op in generator.next_transaction()]
        assert all(op.kind == "read" for op in ops)

    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(WorkloadSpec(), seed=5)
        b = WorkloadGenerator(WorkloadSpec(), seed=5)
        txa = [a.next_transaction() for _ in range(10)]
        txb = [b.next_transaction() for _ in range(10)]
        assert txa == txb

    def test_hotspot_concentrates_accesses(self):
        spec = WorkloadSpec(items=100, hot_fraction=0.02,
                            hot_access_probability=0.9)
        generator = WorkloadGenerator(spec, seed=2)
        picks = [generator.pick_item() for _ in range(500)]
        hot = [p for p in picks if p in ("item0", "item1")]
        assert len(hot) > 300

    def test_zipf_skews_toward_low_ranks(self):
        spec = WorkloadSpec(items=50, zipf_s=1.2)
        generator = WorkloadGenerator(spec, seed=3)
        picks = [generator.pick_item() for _ in range(500)]
        top = sum(1 for p in picks if p in ("item0", "item1", "item2"))
        assert top > 150

    def test_unique_writes_are_unique(self):
        generator = WorkloadGenerator(WorkloadSpec(), seed=4)
        values = {generator.unique_write().argument for _ in range(50)}
        assert len(values) == 50

    @given(st.floats(0, 1), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_mix_ratio_roughly_respected(self, read_fraction, ops):
        spec = WorkloadSpec(read_fraction=read_fraction, ops_per_transaction=ops)
        generator = WorkloadGenerator(spec, seed=0)
        drawn = [op for _ in range(100) for op in generator.next_transaction()]
        reads = sum(1 for op in drawn if op.kind == "read")
        assert abs(reads / len(drawn) - read_fraction) < 0.2


class TestSpecValidation:
    # Regression: out-of-range skew knobs used to be accepted silently and
    # produced inverted skew or crashing Zipf weights downstream.

    def test_out_of_range_hot_fraction_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(hot_fraction=-0.1)
        with pytest.raises(ValueError):
            WorkloadSpec(hot_fraction=1.5)

    def test_out_of_range_hot_access_probability_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(hot_access_probability=-0.5)
        with pytest.raises(ValueError):
            WorkloadSpec(hot_access_probability=2.0)

    def test_negative_zipf_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(zipf_s=-1.0)

    def test_nan_skew_rejected(self):
        nan = float("nan")
        with pytest.raises(ValueError):
            WorkloadSpec(hot_fraction=nan)
        with pytest.raises(ValueError):
            WorkloadSpec(hot_access_probability=nan)
        with pytest.raises(ValueError):
            WorkloadSpec(zipf_s=nan)

    def test_boundary_values_accepted(self):
        WorkloadSpec(hot_fraction=1.0, hot_access_probability=1.0, zipf_s=0.0)


class TestHotSetRounding:
    # Regression: ``int(spec.items * spec.hot_fraction)`` truncated the
    # binary-float product, silently shrinking the hot set (0.29 * 100 is
    # 28.999... and became 28 items instead of 29).

    def test_hot_set_size_rounds_half_up(self):
        spec = WorkloadSpec(items=100, hot_fraction=0.29,
                            hot_access_probability=0.5)
        assert WorkloadGenerator(spec, seed=0).hot_set_size == 29

    def test_hot_set_share_pinned(self):
        # Under a hot probability of 1.0 every pick must land inside the
        # spec'd 29-item hot set, and all 29 items must be reachable.
        spec = WorkloadSpec(items=100, hot_fraction=0.29,
                            hot_access_probability=1.0)
        generator = WorkloadGenerator(spec, seed=1)
        picks = {generator.pick_item() for _ in range(5000)}
        assert picks == {f"item{i}" for i in range(29)}

    def test_tiny_hot_fraction_keeps_one_item(self):
        spec = WorkloadSpec(items=10, hot_fraction=0.01,
                            hot_access_probability=0.9)
        assert WorkloadGenerator(spec, seed=0).hot_set_size == 1

    def test_zero_hot_fraction_means_no_hot_set(self):
        assert WorkloadGenerator(WorkloadSpec(items=10), seed=0).hot_set_size == 0

    @given(st.integers(2, 500), st.floats(0.01, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_hot_set_share_within_one_item(self, items, fraction):
        spec = WorkloadSpec(items=items, hot_fraction=fraction,
                            hot_access_probability=0.5)
        generator = WorkloadGenerator(spec, seed=0)
        expected = items * fraction
        # A nonzero hot fraction keeps at least one hot item; above that
        # floor the size must track the exact product within half an item
        # (the truncation bug was off by up to a whole item).
        assert generator.hot_set_size >= 1
        if expected >= 1:
            assert abs(generator.hot_set_size - expected) <= 0.5


class TestZipfMonotonicity:
    def test_zipf_rank_counts_decrease(self):
        # Zipf access counts must fall with rank (coarse-grained: compare
        # front, middle and tail thirds so sampling noise cannot flip it).
        spec = WorkloadSpec(items=30, zipf_s=1.0)
        generator = WorkloadGenerator(spec, seed=9)
        counts = {f"item{i}": 0 for i in range(30)}
        for _ in range(6000):
            counts[generator.pick_item()] += 1
        front = sum(counts[f"item{i}"] for i in range(10))
        middle = sum(counts[f"item{i}"] for i in range(10, 20))
        tail = sum(counts[f"item{i}"] for i in range(20, 30))
        assert front > middle > tail


class TestDriver:
    def test_driver_completes_budget(self):
        system, driver, summary = run_workload(
            "lazy_ue", spec=WorkloadSpec(items=5), replicas=2, clients=2,
            requests_per_client=5, seed=1, settle=200.0,
        )
        assert summary.requests == 10
        assert len(driver.results) == 10

    def test_retry_aborts_resubmits(self):
        spec = WorkloadSpec(items=1, read_fraction=0.0)
        system, driver, summary = run_workload(
            "certification", spec=spec, replicas=2, clients=3,
            requests_per_client=4, seed=2, retry_aborts=True, settle=300.0,
        )
        # With one hot item, raw certification aborts are guaranteed; the
        # driver hides them by retrying.
        assert summary.abort_rate == 0.0
        assert driver.extra_attempts > 0

    def test_retry_attempts_reach_summary(self):
        # Regression: ``extra_attempts`` was a bare counter that never fed
        # the summary — retried aborts vanished from ``retries`` and no
        # per-attempt abort rate existed at all.
        spec = WorkloadSpec(items=1, read_fraction=0.0)
        system, driver, summary = run_workload(
            "certification", spec=spec, replicas=2, clients=3,
            requests_per_client=4, seed=2, retry_aborts=True, settle=300.0,
        )
        assert driver.extra_attempts > 0
        assert len(driver.attempts) == driver.extra_attempts
        assert summary.retries >= driver.extra_attempts
        assert summary.attempts == summary.requests + driver.extra_attempts
        # Final-result semantics are unchanged (retried-to-commit runs
        # still read as abort-free); the per-attempt view shows the
        # aborts the servers actually produced.
        assert summary.abort_rate == 0.0
        assert summary.attempt_abort_rate > 0.0
        assert summary.attempt_aborts == driver.extra_attempts

    def test_retry_latency_spans_all_attempts(self):
        # Regression: a retried request's final Result carried the *last*
        # attempt's submission time, so its reported latency omitted every
        # earlier attempt and the think-time between them.
        spec = WorkloadSpec(items=1, read_fraction=0.0)
        system, driver, summary = run_workload(
            "certification", spec=spec, replicas=2, clients=3,
            requests_per_client=4, seed=2, retry_aborts=True, settle=300.0,
        )
        raw = {r.request_id: r for c in system.clients for r in c.results}
        spanned = [
            r for r in driver.results
            if r.submitted_at < raw[r.request_id].submitted_at
        ]
        assert spanned, "no driver result spans its earlier attempts"
        for result in spanned:
            assert result.latency > raw[result.request_id].latency

    def test_think_time_spreads_submissions(self):
        fast = run_workload("lazy_ue", replicas=2, clients=1,
                            requests_per_client=5, seed=3, settle=0.0)[2]
        slow = run_workload("lazy_ue", replicas=2, clients=1,
                            requests_per_client=5, seed=3, think_time=50.0,
                            settle=0.0)[2]
        assert slow.duration > fast.duration

    def test_same_seed_same_summary(self):
        s1 = run_workload("eager_primary", replicas=3, clients=2,
                          requests_per_client=5, seed=11, settle=100.0)[2]
        s2 = run_workload("eager_primary", replicas=3, clients=2,
                          requests_per_client=5, seed=11, settle=100.0)[2]
        assert s1.row() == s2.row()
