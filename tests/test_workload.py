"""Tests for workload generation and the closed-loop driver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import ClosedLoopDriver, WorkloadGenerator, WorkloadSpec, run_workload


class TestWorkloadSpec:
    def test_invalid_read_fraction_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(read_fraction=1.5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(items=0)
        with pytest.raises(ValueError):
            WorkloadSpec(ops_per_transaction=0)


class TestWorkloadGenerator:
    def test_transaction_size_matches_spec(self):
        generator = WorkloadGenerator(WorkloadSpec(ops_per_transaction=4), seed=1)
        assert len(generator.next_transaction()) == 4

    def test_read_fraction_zero_means_all_updates(self):
        generator = WorkloadGenerator(WorkloadSpec(read_fraction=0.0), seed=1)
        ops = [op for _ in range(20) for op in generator.next_transaction()]
        assert all(op.kind == "update" for op in ops)

    def test_read_fraction_one_means_all_reads(self):
        generator = WorkloadGenerator(WorkloadSpec(read_fraction=1.0), seed=1)
        ops = [op for _ in range(20) for op in generator.next_transaction()]
        assert all(op.kind == "read" for op in ops)

    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(WorkloadSpec(), seed=5)
        b = WorkloadGenerator(WorkloadSpec(), seed=5)
        txa = [a.next_transaction() for _ in range(10)]
        txb = [b.next_transaction() for _ in range(10)]
        assert txa == txb

    def test_hotspot_concentrates_accesses(self):
        spec = WorkloadSpec(items=100, hot_fraction=0.02,
                            hot_access_probability=0.9)
        generator = WorkloadGenerator(spec, seed=2)
        picks = [generator.pick_item() for _ in range(500)]
        hot = [p for p in picks if p in ("item0", "item1")]
        assert len(hot) > 300

    def test_zipf_skews_toward_low_ranks(self):
        spec = WorkloadSpec(items=50, zipf_s=1.2)
        generator = WorkloadGenerator(spec, seed=3)
        picks = [generator.pick_item() for _ in range(500)]
        top = sum(1 for p in picks if p in ("item0", "item1", "item2"))
        assert top > 150

    def test_unique_writes_are_unique(self):
        generator = WorkloadGenerator(WorkloadSpec(), seed=4)
        values = {generator.unique_write().argument for _ in range(50)}
        assert len(values) == 50

    @given(st.floats(0, 1), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_mix_ratio_roughly_respected(self, read_fraction, ops):
        spec = WorkloadSpec(read_fraction=read_fraction, ops_per_transaction=ops)
        generator = WorkloadGenerator(spec, seed=0)
        drawn = [op for _ in range(100) for op in generator.next_transaction()]
        reads = sum(1 for op in drawn if op.kind == "read")
        assert abs(reads / len(drawn) - read_fraction) < 0.2


class TestDriver:
    def test_driver_completes_budget(self):
        system, driver, summary = run_workload(
            "lazy_ue", spec=WorkloadSpec(items=5), replicas=2, clients=2,
            requests_per_client=5, seed=1, settle=200.0,
        )
        assert summary.requests == 10
        assert len(driver.results) == 10

    def test_retry_aborts_resubmits(self):
        spec = WorkloadSpec(items=1, read_fraction=0.0)
        system, driver, summary = run_workload(
            "certification", spec=spec, replicas=2, clients=3,
            requests_per_client=4, seed=2, retry_aborts=True, settle=300.0,
        )
        # With one hot item, raw certification aborts are guaranteed; the
        # driver hides them by retrying.
        assert summary.abort_rate == 0.0
        assert driver.extra_attempts > 0

    def test_think_time_spreads_submissions(self):
        fast = run_workload("lazy_ue", replicas=2, clients=1,
                            requests_per_client=5, seed=3, settle=0.0)[2]
        slow = run_workload("lazy_ue", replicas=2, clients=1,
                            requests_per_client=5, seed=3, think_time=50.0,
                            settle=0.0)[2]
        assert slow.duration > fast.duration

    def test_same_seed_same_summary(self):
        s1 = run_workload("eager_primary", replicas=3, clients=2,
                          requests_per_client=5, seed=11, settle=100.0)[2]
        s2 = run_workload("eager_primary", replicas=3, clients=2,
                          requests_per_client=5, seed=11, settle=100.0)[2]
        assert s1.row() == s2.row()
