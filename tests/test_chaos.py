"""Chaos tests: randomized faults and workloads, invariant-checked.

Each scenario draws a random crash schedule and workload from a seeded
RNG and asserts the protocol-appropriate oracle: strong techniques must
keep exactly-once counters and converge; lazy ones must converge after
reconciliation.  Failures here are the bugs that hand-written scenarios
miss — crash timing races, retry storms, detector flapping.
"""

import pytest

from repro import Operation, ReplicatedSystem
from repro.analysis import counter_check

SEEDS = [1, 2, 3]


def run_chaos(protocol, seed, replicas=3, crash_victim="r0", recover=False,
              requests=8, config=None, client_retries=True):
    system = ReplicatedSystem(
        protocol, replicas=replicas, clients=2, seed=seed,
        fd_interval=2.0, fd_timeout=8.0, client_timeout=40.0, config=config,
    )
    rng = system.sim.rng
    crash_time = rng.uniform(20.0, 150.0)
    system.injector.crash_at(crash_time, crash_victim)
    if recover:
        system.injector.recover_at(crash_time + rng.uniform(60.0, 120.0), crash_victim)

    all_results = []

    def client_loop(index):
        for _ in range(requests):
            result = yield system.client(index).submit(
                [Operation.update("x", "add", 1)]
            )
            attempts = 0
            while client_retries and not result.committed and attempts < 10:
                attempts += 1
                yield system.sim.timeout(10.0)
                result = yield system.client(index).submit(
                    [Operation.update("x", "add", 1)]
                )
            all_results.append(result)
            yield system.sim.timeout(rng.uniform(5.0, 30.0))

    handles = [system.sim.spawn(client_loop(i)) for i in range(2)]
    system.sim.run_until_done(system.sim.all_of(handles))
    system.settle(600)
    return system, all_results


class TestStrongTechniquesUnderChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("protocol", ["active", "semi_passive", "passive"])
    def test_ds_techniques_keep_counters_exact(self, protocol, seed):
        system, results = run_chaos(protocol, seed)
        committed = [r for r in results if r.committed]
        assert len(committed) == 16, "with retries, everything must commit"
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        violations = counter_check(committed, stores, strict=False)
        assert not violations, violations

    @pytest.mark.parametrize("seed", SEEDS)
    def test_eager_primary_with_recovery(self, seed):
        system, results = run_chaos("eager_primary", seed, recover=True)
        committed = [r for r in results if r.committed]
        system.settle(400)
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        violations = counter_check(committed, stores, strict=False)
        assert not violations, violations
        assert system.converged()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_certification_under_secondary_crash(self, seed):
        # Crash a non-delegate member; certification rides the consensus
        # ABCAST and must stay exact at the survivors.
        system, results = run_chaos("certification", seed, crash_victim="r2")
        committed = [r for r in results if r.committed]
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        violations = counter_check(committed, stores, strict=False)
        assert not violations, violations

    @pytest.mark.parametrize("seed", SEEDS)
    def test_eager_ue_locking_under_secondary_crash(self, seed):
        system, results = run_chaos(
            "eager_ue_locking", seed, crash_victim="r2",
            config={"lock_timeout": 25.0},
        )
        committed = [r for r in results if r.committed]
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        violations = counter_check(committed, stores, strict=False)
        assert not violations, violations


class TestWeakTechniquesUnderChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lazy_ue_converges_despite_crash(self, seed):
        system, results = run_chaos(
            "lazy_ue", seed, crash_victim="r2",
            config={"propagation_delay": 15.0},
        )
        assert system.converged(), system.divergent_replicas()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lazy_primary_survivors_converge(self, seed):
        system, results = run_chaos(
            "lazy_primary", seed, config={"propagation_delay": 10.0},
        )
        assert system.converged(), system.divergent_replicas()


class TestDetectorFlapping:
    @pytest.mark.parametrize("protocol", ["active", "semi_passive"])
    def test_aggressive_detectors_never_break_safety(self, protocol):
        # Tiny FD timeout + jittery latency: constant wrong suspicions.
        from repro.net import UniformLatency
        system = ReplicatedSystem(
            protocol, replicas=3, clients=2, seed=11,
            latency=UniformLatency(0.5, 2.5),
            fd_interval=1.0, fd_timeout=1.2,
        )
        results = []

        def client_loop(index):
            for _ in range(6):
                results.append(
                    (yield system.client(index).submit(
                        [Operation.update("x", "add", 1)]
                    ))
                )
                yield system.sim.timeout(15.0)

        handles = [system.sim.spawn(client_loop(i)) for i in range(2)]
        system.sim.run_until_done(system.sim.all_of(handles))
        system.settle(600)
        wrong = sum(
            system.replicas[n].detector.wrong_suspicions
            for n in system.replica_names
        )
        assert wrong > 0, "the scenario must actually provoke wrong suspicions"
        committed = [r for r in results if r.committed]
        assert len(committed) == 12
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        assert not counter_check(committed, stores, strict=False)


class TestFaultPlaneChaos:
    """The link-fault kinds beyond crash/partition, via the injector."""

    def test_drop_storm_with_retries_stays_exact(self):
        system = ReplicatedSystem(
            "active", replicas=3, clients=2, seed=9,
            fd_interval=2.0, fd_timeout=8.0, client_timeout=40.0,
        )
        system.injector.drop_at(15.0, "r1", 0.4, duration=80.0)
        system.injector.duplicate_at(15.0, "r0", 0.3, duration=80.0)
        results = []

        def client_loop(index):
            for _ in range(6):
                result = yield system.client(index).submit(
                    [Operation.update("x", "add", 1)]
                )
                attempts = 0
                while not result.committed and attempts < 10:
                    attempts += 1
                    yield system.sim.timeout(10.0)
                    result = yield system.client(index).submit(
                        [Operation.update("x", "add", 1)]
                    )
                results.append(result)
                yield system.sim.timeout(10.0)

        handles = [system.sim.spawn(client_loop(i)) for i in range(2)]
        system.sim.run_until_done(system.sim.all_of(handles))
        system.net.clear_faults()
        system.settle(600)
        committed = [r for r in results if r.committed]
        assert len(committed) == 12
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        assert not counter_check(committed, stores, strict=False)

    def test_gray_slow_node_never_breaks_safety(self):
        # r1 is alive but 10x slow: detectors flap, consensus must still
        # exclude-or-wait correctly and counters stay exact.
        system = ReplicatedSystem(
            "semi_passive", replicas=3, clients=2, seed=10,
            fd_interval=2.0, fd_timeout=6.0, client_timeout=60.0,
        )
        system.injector.slow_at(10.0, "r1", 10.0, duration=100.0)
        system.injector.jitter_at(10.0, "r2", 5.0, duration=100.0)
        results = []

        def client_loop(index):
            for _ in range(5):
                results.append(
                    (yield system.client(index).submit(
                        [Operation.update("x", "add", 1)]
                    ))
                )
                yield system.sim.timeout(20.0)

        handles = [system.sim.spawn(client_loop(i)) for i in range(2)]
        system.sim.run_until_done(system.sim.all_of(handles))
        system.net.clear_faults()
        system.settle(600)
        committed = [r for r in results if r.committed]
        stores = {n: system.store_of(n) for n in system.live_replicas()}
        assert not counter_check(committed, stores, strict=False)
        assert system.converged(), system.divergent_replicas()


class TestPartitionsAndHealing:
    def test_lazy_ue_partition_heal_reconciles(self):
        system = ReplicatedSystem(
            "lazy_ue", replicas=3, clients=3, seed=4,
            config={"propagation_delay": 8.0},
        )
        system.injector.partition_at(10.0, ["r0", "c0"], ["r1", "r2", "c1", "c2"])
        system.injector.heal_at(150.0)
        futures = []
        def submit_all():
            fs = [
                system.client(i).submit([Operation.write("x", f"side-{i}")])
                for i in range(3)
            ]
            values = yield system.sim.all_of(fs)
            return values
        handle = system.sim.spawn(submit_all())
        system.sim.run_until_done(handle)
        assert all(r.committed for r in handle.result)
        system.sim.run(until=600.0)
        assert system.converged(), system.divergent_replicas()

    def test_consensus_group_blocks_without_majority_then_recovers(self):
        system = ReplicatedSystem("semi_passive", replicas=3, clients=1, seed=5,
                                  fd_interval=2.0, fd_timeout=6.0)
        # Partition the client's replica away from the other two: no
        # majority on its side, so nothing can be decided...
        system.injector.partition_at(5.0, ["r0", "c0"], ["r1", "r2"])
        future = None
        def submit():
            yield system.sim.timeout(10.0)
            return (yield system.client(0).submit([Operation.write("x", 1)]))
        handle = system.sim.spawn(submit())
        system.sim.run(until=100.0)
        assert not handle.done, "minority side must block"
        # ...until the partition heals.
        system.net.heal()
        result = system.sim.run_until_done(handle)
        assert result.committed
