# Tier-1 verification: the linter runs before the test suite so that
# nondeterminism/layering/contract violations fail fast with file:line
# diagnostics instead of surfacing as a flaky trace diff mid-pytest.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check lint test baseline

check: lint test

lint:
	$(PYTHON) -m repro.lint src/repro

test:
	$(PYTHON) -m pytest -x -q

# Grandfather the current findings (use sparingly; the tree ships clean).
baseline:
	$(PYTHON) -m repro.lint src/repro --write-baseline
