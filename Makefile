# Tier-1 verification: the linter runs before the test suite so that
# nondeterminism/layering/contract violations fail fast with file:line
# diagnostics instead of surfacing as a flaky trace diff mid-pytest.
# `typecheck` is skipped gracefully when mypy is not installed (the CI
# image installs it; the minimal dev container may not).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check lint typecheck test baseline catalog catalog-check \
	waitgraph waitgraph-check interference interference-check \
	observe bench-json chaos profile phasecost phasecost-check \
	sweep sweep-smoke

check: lint typecheck catalog-check waitgraph-check interference-check \
	phasecost-check test chaos

lint:
	$(PYTHON) -m repro.lint src/repro

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "typecheck: mypy not installed, skipping"; \
	fi

test:
	$(PYTHON) -m pytest -x -q

# Chaos campaign matrix: every named fault campaign against every
# registered technique, driven through the resilient client edge, with
# obs evidence artifacts (trace + spans + metrics + verdict report per
# cell) exported to CHAOS_OUT.  Fails if any cell violates its
# technique's declared guarantee.  See docs/resilience.md.
CHAOS_OUT ?= benchmarks/output/chaos
CHAOS_SEED ?= 0
chaos:
	$(PYTHON) -m repro chaos --seed $(CHAOS_SEED) --out $(CHAOS_OUT)

# Observed run of one technique (TECH=..., SEED=...): writes the
# Perfetto trace, JSONL spans and metrics report to benchmarks/output/.
TECH ?= active
SEED ?= 1
observe:
	$(PYTHON) -m repro observe $(TECH) --seed $(SEED)

# Phase-resolved latency profiles (critical path + five-phase cost
# attribution + windowed time series) for every technique: writes
# profile_<tech>_seed<seed>.json and a Perfetto counter track per
# technique to PROFILE_OUT.  Byte-deterministic per seed.
PROFILE_OUT ?= benchmarks/output/profile
PROFILE_SEED ?= 7
profile:
	$(PYTHON) -m repro profile --all --seed $(PROFILE_SEED) --out $(PROFILE_OUT)

# Regenerate the phase cost catalog (docs/phasecost.md + .json) — the
# measured five-phase cost matrix for all ten techniques, from live
# observed runs; `phasecost-check` fails when the checked-in copy is
# stale.
phasecost:
	$(PYTHON) -m repro phasecost

phasecost-check:
	$(PYTHON) -m repro phasecost --check

# Open-loop seed x rate x technique sweep fanned across CPU cores:
# writes the merged byte-deterministic sweep.json plus the saturation
# table (goodput and p99 vs offered load, knee marked) for all ten
# techniques to SWEEP_OUT.  `sweep-smoke` is the CI-sized matrix (two
# techniques, one seed, two rates).  See docs/workloads.md.
SWEEP_OUT ?= benchmarks/output/sweep
sweep:
	$(PYTHON) -m repro sweep --out $(SWEEP_OUT)

sweep-smoke:
	$(PYTHON) -m repro sweep --smoke --out $(SWEEP_OUT)

# Kernel & network hot-path microbenchmarks: writes the perf-trajectory
# file BENCH_kernel.json at the repo root (measured figures + recorded
# pre-optimization baseline + per-workload speedups).  Not part of
# `check` — wall-clock results belong in an artifact, not a gate.
bench-json:
	$(PYTHON) benchmarks/perf_kernel.py --json BENCH_kernel.json --repeats 5

# Regenerate the protocol message catalog (docs/messages.md + .json)
# from the M4xx message-flow graph; `catalog-check` fails when the
# checked-in copy is stale.
catalog:
	$(PYTHON) -m repro.lint src/repro --write-catalog docs/messages.md

catalog-check:
	$(PYTHON) -m repro.lint src/repro --check-catalog docs/messages.md

# Regenerate the wait graph (docs/waitgraph.md + .json + per-technique
# DOT files in docs/waitgraph/) from the W5xx wait-graph analysis;
# `waitgraph-check` fails when the checked-in copies are stale.
waitgraph:
	$(PYTHON) -m repro.lint src/repro --write-waitgraph docs/waitgraph.md

waitgraph-check:
	$(PYTHON) -m repro.lint src/repro --check-waitgraph docs/waitgraph.md

# Regenerate the interference catalog (docs/interference.md + .json) —
# per-handler replica-state read/write sets and atomicity windows from
# the R6xx analysis; `interference-check` fails when stale.
interference:
	$(PYTHON) -m repro.lint src/repro --write-interference docs/interference.md

interference-check:
	$(PYTHON) -m repro.lint src/repro --check-interference docs/interference.md

# Grandfather the current findings (use sparingly; the tree ships clean).
baseline:
	$(PYTHON) -m repro.lint src/repro --write-baseline
